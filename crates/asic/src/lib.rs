//! 65 nm ASIC computational-energy model for quantized DNN layers.
//!
//! The paper synthesizes pipelined per-neuron implementations with a
//! 65 nm commercial standard-cell library (Synopsys DC + PrimeTime) and
//! reports the *computational* energy of each network's largest layer
//! (Fig. 5). That quantity is `Σ op-count × per-op energy`, which is what
//! this crate computes from documented per-operation energy constants
//! ([`OpEnergy`]) and the layer geometry
//! ([`flightnn::configs::ConvSpec`]).
//!
//! Energy constants are 65 nm-class approximations scaled from published
//! 45 nm measurements (Horowitz, ISSCC 2014, ×≈1.8 for the node change);
//! integer multiplier energy scales quadratically with operand width.
//! Absolute joules are therefore approximate, but the *ratios* between
//! arithmetic styles — which drive Fig. 5's Pareto fronts — are the
//! well-established ones: a shift is far cheaper than a multiply, and a
//! `k`-shift multiply costs `k` shifts plus `k − 1` small adds.

pub mod energy;
pub mod estimate;

pub use energy::{ComputeStyle, OpEnergy};
pub use estimate::{flight_layer_energy_uj, layer_energy_uj};
