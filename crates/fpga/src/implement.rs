//! The accelerator implementation model: batch sizing and throughput.
//!
//! One design = `LANES_PER_IMAGE` MAC lanes per in-flight image ×
//! `batch` in-flight images (the paper batches inference and grows the
//! batch until a resource runs out, §5.2). Weights are resident in BRAM
//! once; each in-flight image owns double-buffered activation storage.
//!
//! ```text
//! throughput = freq · lanes_total / (macs_per_image · cycles_per_mac)
//! ```

use flight_tensor::Conv2dGeometry;
use flightnn::configs::ConvSpec;
use serde::{Deserialize, Serialize};

use crate::budget::{bram_blocks, ResourceBudget, ResourceUsage};
use crate::datapath::Datapath;

/// MAC lanes instantiated per in-flight image — fixed by the shared HLS
/// unroll pragma ("the same pragma and directives are used for all",
/// §5.2).
pub const LANES_PER_IMAGE: usize = 4;

/// The layer to implement: geometry, arithmetic style, and how many bits
/// its weights occupy in on-chip memory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerDesign {
    /// Conv layer geometry.
    pub spec: ConvSpec,
    /// Arithmetic style.
    pub datapath: Datapath,
    /// Total weight storage bits of this layer under its scheme.
    pub weight_bits: usize,
}

/// A sized accelerator: batch, lanes, throughput, resource usage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Implementation {
    /// In-flight images.
    pub batch: usize,
    /// Total MAC lanes (`batch × LANES_PER_IMAGE`).
    pub lanes: usize,
    /// Images per second at the budget's clock.
    pub throughput: f64,
    /// Resources consumed.
    pub usage: ResourceUsage,
    /// Which resource capped the batch.
    pub binding: Binding,
}

/// The resource that limited batch parallelism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Binding {
    /// Block RAM (the paper's finding for (F)LightNNs).
    Bram,
    /// DSP slices (full-precision and fixed-point designs).
    Dsp,
    /// LUT fabric.
    Lut,
    /// Flip-flops.
    Ff,
}

impl std::fmt::Display for Binding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Binding::Bram => write!(f, "BRAM"),
            Binding::Dsp => write!(f, "DSP"),
            Binding::Lut => write!(f, "LUT"),
            Binding::Ff => write!(f, "FF"),
        }
    }
}

/// Errors from [`implement_layer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DesignError {
    /// Even a batch of one does not fit the budget.
    DoesNotFit(&'static str),
}

impl std::fmt::Display for DesignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DesignError::DoesNotFit(what) => {
                write!(
                    f,
                    "design does not fit the device: {what} exhausted at batch 1"
                )
            }
        }
    }
}

impl std::error::Error for DesignError {}

/// Sizes the accelerator for one layer on a budget: finds the largest
/// batch whose lanes and buffers fit, then computes throughput.
///
/// # Errors
///
/// Returns [`DesignError::DoesNotFit`] when a single in-flight image
/// already exceeds a resource.
pub fn implement_layer(
    design: &LayerDesign,
    budget: &ResourceBudget,
) -> Result<Implementation, DesignError> {
    let cost = design.datapath.lane_cost();
    let spec = &design.spec;
    let geom: Conv2dGeometry = spec.geometry();

    // Per-image activation storage: input + output feature maps,
    // double-buffered, at the datapath's activation width.
    let act_bits = design.datapath.act_bits() as usize;
    let in_px = spec.in_channels * spec.in_h * spec.in_w;
    let out_px = spec.out_channels * geom.out_h * geom.out_w;
    let act_blocks_per_image = bram_blocks(2 * (in_px + out_px) * act_bits);

    // Weights resident once when they fit in half the device; otherwise
    // they stream from DRAM through a double buffer and the design pays a
    // bandwidth penalty (fp32 weight sets of the widest layers exceed
    // on-chip memory, as they would on the real board).
    let raw_weight_blocks = bram_blocks(design.weight_bits);
    let resident_cap = budget.bram / 2;
    let (weight_blocks, stream_penalty) = if raw_weight_blocks > resident_cap {
        (resident_cap, 2.0f64)
    } else {
        (raw_weight_blocks, 1.0)
    };

    // Batch caps per resource.
    let bram_cap = budget
        .bram
        .saturating_sub(weight_blocks)
        .checked_div(act_blocks_per_image)
        .unwrap_or(usize::MAX);
    let lane_dsp = cost.dsp * LANES_PER_IMAGE as f64;
    let dsp_cap = if lane_dsp > 0.0 {
        ((budget.dsp.saturating_sub(cost.dsp_overhead)) as f64 / lane_dsp) as usize
    } else {
        usize::MAX
    };
    let lut_cap = (budget.lut as f64 / (cost.lut * LANES_PER_IMAGE as f64)) as usize;
    let ff_cap = (budget.ff as f64 / (cost.ff * LANES_PER_IMAGE as f64)) as usize;

    let (batch, binding) = [
        (bram_cap, Binding::Bram),
        (dsp_cap, Binding::Dsp),
        (lut_cap, Binding::Lut),
        (ff_cap, Binding::Ff),
    ]
    .into_iter()
    .min_by_key(|&(cap, _)| cap)
    .expect("four candidate caps");

    if batch == 0 {
        let what = match binding {
            Binding::Bram => "BRAM",
            Binding::Dsp => "DSP",
            Binding::Lut => "LUT",
            Binding::Ff => "FF",
        };
        return Err(DesignError::DoesNotFit(what));
    }

    let lanes = batch * LANES_PER_IMAGE;
    let macs = spec.macs() as f64;
    let throughput = budget.freq_hz * lanes as f64 / (macs * cost.cycles_per_mac * stream_penalty);

    let usage = ResourceUsage {
        bram: weight_blocks + batch * act_blocks_per_image,
        dsp: cost.dsp_overhead + (lane_dsp * batch as f64).round() as usize,
        ff: (cost.ff * lanes as f64).round() as usize,
        lut: (cost.lut * lanes as f64).round() as usize,
    };

    Ok(Implementation {
        batch,
        lanes,
        throughput,
        usage,
        binding,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::ZC706;
    use flightnn::QuantScheme;

    /// Network 7's largest conv layer at the paper's native 32×32
    /// CIFAR-100 resolution (the hardware model needs no training, so it
    /// always runs at paper-native geometry).
    fn net7_largest() -> ConvSpec {
        flightnn::configs::NetworkConfig::by_id(7).largest_conv([3, 32, 32], 1.0)
    }

    fn design(scheme: &QuantScheme, mean_k: Option<f32>) -> LayerDesign {
        let spec = net7_largest();
        let bits_per_weight = scheme.fixed_weight_bits().unwrap_or(6) as usize;
        LayerDesign {
            spec,
            datapath: Datapath::from_scheme(scheme, mean_k),
            weight_bits: spec.weights() * bits_per_weight,
        }
    }

    #[test]
    fn bindings_match_table6() {
        // Full precision binds on BRAM or DSP; fixed point on DSP;
        // (F)LightNNs on BRAM (§5.2's finding).
        let full = implement_layer(&design(&QuantScheme::full(), None), &ZC706).unwrap();
        assert!(
            matches!(full.binding, Binding::Bram | Binding::Dsp),
            "full binds on {:?}",
            full.binding
        );
        let fp = implement_layer(&design(&QuantScheme::fp4w8a(), None), &ZC706).unwrap();
        assert_eq!(fp.binding, Binding::Dsp);
        let l1 = implement_layer(&design(&QuantScheme::l1(), None), &ZC706).unwrap();
        assert_eq!(l1.binding, Binding::Bram);
        let l2 = implement_layer(&design(&QuantScheme::l2(), None), &ZC706).unwrap();
        assert_eq!(l2.binding, Binding::Bram);
    }

    #[test]
    fn throughput_ordering_matches_tables() {
        let full = implement_layer(&design(&QuantScheme::full(), None), &ZC706).unwrap();
        let fp = implement_layer(&design(&QuantScheme::fp4w8a(), None), &ZC706).unwrap();
        let l1 = implement_layer(&design(&QuantScheme::l1(), None), &ZC706).unwrap();
        let l2 = implement_layer(&design(&QuantScheme::l2(), None), &ZC706).unwrap();

        // Every quantized design beats full precision.
        for q in [&fp, &l1, &l2] {
            assert!(q.throughput > full.throughput);
        }
        // L-1 is roughly twice as fast as L-2 (paper: 1.9–2× across nets).
        let ratio = l1.throughput / l2.throughput;
        assert!((1.5..3.0).contains(&ratio), "L-1/L-2 ratio {ratio}");
        // L-1 beats fixed point (the headline "up to 2×" claim).
        assert!(l1.throughput > fp.throughput);
    }

    #[test]
    fn flightnn_interpolates_between_l1_and_l2() {
        let l1 = implement_layer(&design(&QuantScheme::l1(), None), &ZC706).unwrap();
        let l2 = implement_layer(&design(&QuantScheme::l2(), None), &ZC706).unwrap();
        let fl = implement_layer(&design(&QuantScheme::flight(1e-5), Some(1.5)), &ZC706).unwrap();
        assert!(fl.throughput > l2.throughput);
        assert!(fl.throughput < l1.throughput);
    }

    #[test]
    fn usage_fits_the_budget() {
        for scheme in [
            QuantScheme::full(),
            QuantScheme::fp4w8a(),
            QuantScheme::l1(),
            QuantScheme::l2(),
        ] {
            let imp = implement_layer(&design(&scheme, None), &ZC706).unwrap();
            assert!(
                ZC706.fits(&imp.usage),
                "{}: usage {} exceeds budget",
                scheme.label(),
                imp.usage
            );
            assert!(imp.batch >= 1);
        }
    }

    #[test]
    fn shift_add_uses_almost_no_dsp() {
        let l2 = implement_layer(&design(&QuantScheme::l2(), None), &ZC706).unwrap();
        assert!(l2.usage.dsp <= 16, "L-2 DSP usage {}", l2.usage.dsp);
        let fp = implement_layer(&design(&QuantScheme::fp4w8a(), None), &ZC706).unwrap();
        assert!(fp.usage.dsp > 100, "FP DSP usage {}", fp.usage.dsp);
    }

    #[test]
    fn oversized_layer_reports_does_not_fit() {
        let mut d = design(&QuantScheme::full(), None);
        // A grotesque layer: giant activations exhaust BRAM at batch 1.
        d.spec = flightnn::configs::ConvSpec {
            in_channels: 4096,
            out_channels: 4096,
            kernel: 3,
            stride: 1,
            padding: 1,
            in_h: 64,
            in_w: 64,
        };
        let err = implement_layer(&d, &ZC706).unwrap_err();
        assert!(err.to_string().contains("does not fit"));
    }

    #[test]
    fn smaller_weights_allow_bigger_batches() {
        // FP (4-bit weights) packs more batch slots than L-2 (8-bit) in
        // the same BRAM... but FP is DSP-bound, so compare L-1 vs L-2
        // (both BRAM-bound, same act storage, different weight bits).
        let l1 = implement_layer(&design(&QuantScheme::l1(), None), &ZC706).unwrap();
        let l2 = implement_layer(&design(&QuantScheme::l2(), None), &ZC706).unwrap();
        assert!(l1.batch >= l2.batch);
    }
}
