//! FPGA resource budgets and usage accounting.

use serde::{Deserialize, Serialize};

/// The resources of a target FPGA.
///
/// The default [`ZC706`] matches the "Available" row of the paper's
/// Table 6.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceBudget {
    /// 36-Kbit block RAMs.
    pub bram: usize,
    /// DSP48 slices.
    pub dsp: usize,
    /// Flip-flops.
    pub ff: usize,
    /// Look-up tables.
    pub lut: usize,
    /// Clock frequency in Hz.
    pub freq_hz: f64,
}

/// The Xilinx Zynq ZC706 evaluation board at 100 MHz (Table 6,
/// "Available" row).
pub const ZC706: ResourceBudget = ResourceBudget {
    bram: 1090,
    dsp: 900,
    ff: 437_200,
    lut: 218_600,
    freq_hz: 100e6,
};

impl ResourceBudget {
    /// Validates that a usage fits this budget.
    pub fn fits(&self, usage: &ResourceUsage) -> bool {
        usage.bram <= self.bram
            && usage.dsp <= self.dsp
            && usage.ff <= self.ff
            && usage.lut <= self.lut
    }
}

/// Resources consumed by one accelerator design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ResourceUsage {
    /// Block RAMs used (weights + per-batch-image activation buffers).
    pub bram: usize,
    /// DSP slices used.
    pub dsp: usize,
    /// Flip-flops used.
    pub ff: usize,
    /// LUTs used.
    pub lut: usize,
}

impl ResourceUsage {
    /// Utilization fractions relative to a budget, as `(bram, dsp, ff,
    /// lut)` in `[0, 1]` (values above 1 mean over-budget).
    pub fn fractions(&self, budget: &ResourceBudget) -> (f64, f64, f64, f64) {
        (
            self.bram as f64 / budget.bram as f64,
            self.dsp as f64 / budget.dsp as f64,
            self.ff as f64 / budget.ff as f64,
            self.lut as f64 / budget.lut as f64,
        )
    }
}

impl std::fmt::Display for ResourceUsage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "BRAM {} DSP {} FF {} LUT {}",
            self.bram, self.dsp, self.ff, self.lut
        )
    }
}

/// Bits per 36-Kbit BRAM block.
pub const BRAM_BLOCK_BITS: usize = 36 * 1024;

/// Number of BRAM blocks needed to hold `bits` of storage.
pub fn bram_blocks(bits: usize) -> usize {
    bits.div_ceil(BRAM_BLOCK_BITS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zc706_matches_table6_available_row() {
        assert_eq!(ZC706.bram, 1090);
        assert_eq!(ZC706.dsp, 900);
        assert_eq!(ZC706.ff, 437_200);
        assert_eq!(ZC706.lut, 218_600);
    }

    #[test]
    fn fits_checks_every_resource() {
        let mut usage = ResourceUsage {
            bram: 1090,
            dsp: 900,
            ff: 437_200,
            lut: 218_600,
        };
        assert!(ZC706.fits(&usage));
        usage.dsp += 1;
        assert!(!ZC706.fits(&usage));
    }

    #[test]
    fn bram_block_rounding() {
        assert_eq!(bram_blocks(0), 0);
        assert_eq!(bram_blocks(1), 1);
        assert_eq!(bram_blocks(BRAM_BLOCK_BITS), 1);
        assert_eq!(bram_blocks(BRAM_BLOCK_BITS + 1), 2);
    }

    #[test]
    fn fractions_are_relative() {
        let usage = ResourceUsage {
            bram: 545,
            dsp: 450,
            ff: 0,
            lut: 0,
        };
        let (b, d, _, _) = usage.fractions(&ZC706);
        assert!((b - 0.5).abs() < 1e-9);
        assert!((d - 0.5).abs() < 1e-9);
    }
}
