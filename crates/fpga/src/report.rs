//! Table 6-style utilization reporting.

use serde::{Deserialize, Serialize};

use crate::budget::ResourceBudget;
use crate::implement::{implement_layer, DesignError, Implementation, LayerDesign};

/// One row of the Table 6 reproduction: a model's resource usage and
/// speedup on the implemented layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UtilizationRow {
    /// Model label ("Full", "L-2 8W8A", …).
    pub model: String,
    /// BRAM blocks used.
    pub bram: usize,
    /// DSP slices used.
    pub dsp: usize,
    /// Flip-flops used.
    pub ff: usize,
    /// LUTs used.
    pub lut: usize,
    /// Throughput in images/s.
    pub throughput: f64,
    /// Batch size chosen.
    pub batch: usize,
    /// Binding resource name.
    pub binding: String,
}

/// Builds one utilization row by implementing `design` on `budget`.
///
/// # Errors
///
/// Propagates [`DesignError`] when the design does not fit.
pub fn utilization_row(
    model: &str,
    design: &LayerDesign,
    budget: &ResourceBudget,
) -> Result<UtilizationRow, DesignError> {
    let imp: Implementation = implement_layer(design, budget)?;
    Ok(UtilizationRow {
        model: model.to_string(),
        bram: imp.usage.bram,
        dsp: imp.usage.dsp,
        ff: imp.usage.ff,
        lut: imp.usage.lut,
        throughput: imp.throughput,
        batch: imp.batch,
        binding: imp.binding.to_string(),
    })
}

impl std::fmt::Display for UtilizationRow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<10} BRAM {:>5} DSP {:>4} FF {:>7} LUT {:>7}  {:>10.1} img/s (batch {}, {}-bound)",
            self.model,
            self.bram,
            self.dsp,
            self.ff,
            self.lut,
            self.throughput,
            self.batch,
            self.binding
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::ZC706;
    use crate::datapath::Datapath;
    use flightnn::QuantScheme;

    #[test]
    fn rows_render_and_order_like_table6() {
        let spec = flightnn::configs::NetworkConfig::by_id(7).largest_conv([3, 32, 32], 1.0);
        let mk = |scheme: &QuantScheme| LayerDesign {
            spec,
            datapath: Datapath::from_scheme(scheme, Some(1.5)),
            weight_bits: spec.weights() * scheme.fixed_weight_bits().unwrap_or(6) as usize,
        };
        let full = utilization_row("Full", &mk(&QuantScheme::full()), &ZC706).unwrap();
        let l2 = utilization_row("L-2", &mk(&QuantScheme::l2()), &ZC706).unwrap();
        let fp = utilization_row("FP", &mk(&QuantScheme::fp4w8a()), &ZC706).unwrap();

        // Table 6 pattern: Full has the most DSPs, shift-add almost none,
        // shift-add leads in LUT share relative to its DSP share.
        assert!(full.dsp > fp.dsp || full.dsp > 100);
        assert!(l2.dsp <= 16);
        assert!(l2.lut > 0);
        let line = l2.to_string();
        assert!(line.contains("BRAM"));
        assert!(line.contains("img/s"));
    }
}
