//! Per-lane cost models of the three arithmetic styles.

use flightnn::QuantScheme;
use serde::{Deserialize, Serialize};

/// The arithmetic style of one multiply-accumulate lane.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Datapath {
    /// 32-bit floating point (the "Full" baseline).
    Float32,
    /// Fixed-point multiply (the "FP xWyA" baseline).
    FixedPoint {
        /// Weight bits.
        weight_bits: u32,
        /// Activation bits.
        act_bits: u32,
    },
    /// Shift-and-add ((F)LightNN). `mean_k` is the average number of
    /// shifts per multiplication over the layer's filters: exactly `k`
    /// for LightNN-`k`, the trained mean `k_i` for FLightNN.
    ShiftAdd {
        /// Average shifts per multiply.
        mean_k: f32,
        /// Activation bits.
        act_bits: u32,
    },
}

/// Per-lane and per-design resource costs — the calibration constants of
/// the model (chosen so the binding pattern matches Table 6: fp32 binds
/// on DSP+BRAM, fixed point on DSP, shift-add on BRAM).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LaneCost {
    /// DSP slices per lane.
    pub dsp: f64,
    /// LUTs per lane.
    pub lut: f64,
    /// Flip-flops per lane.
    pub ff: f64,
    /// Fixed DSP overhead of the whole design (shared accumulators,
    /// address generators).
    pub dsp_overhead: usize,
    /// Cycles between successive MACs retired by one lane (initiation
    /// interval).
    pub cycles_per_mac: f64,
}

impl Datapath {
    /// Derives the datapath of a whole-model quantization scheme.
    ///
    /// `mean_k` must be supplied for FLightNN models (the trained average
    /// shift count of the implemented layer); it is ignored otherwise.
    ///
    /// # Panics
    ///
    /// Panics if the scheme is FLightNN and `mean_k` is `None`.
    pub fn from_scheme(scheme: &QuantScheme, mean_k: Option<f32>) -> Datapath {
        match scheme {
            QuantScheme::Full => Datapath::Float32,
            QuantScheme::FixedPoint {
                weight_bits,
                act_bits,
            } => Datapath::FixedPoint {
                weight_bits: *weight_bits,
                act_bits: *act_bits,
            },
            QuantScheme::LightNn { k, act_bits } => Datapath::ShiftAdd {
                mean_k: *k as f32,
                act_bits: *act_bits,
            },
            QuantScheme::FLight { act_bits, .. } => Datapath::ShiftAdd {
                mean_k: mean_k.expect("FLightNN datapath needs the trained mean k"),
                act_bits: *act_bits,
            },
        }
    }

    /// Activation bits stored in the on-chip buffers.
    pub fn act_bits(&self) -> u32 {
        match self {
            Datapath::Float32 => 32,
            Datapath::FixedPoint { act_bits, .. } | Datapath::ShiftAdd { act_bits, .. } => {
                *act_bits
            }
        }
    }

    /// The lane cost model.
    ///
    /// Constants approximate HLS mappings on 7-series fabric: an fp32 MAC
    /// costs ~5 DSPs plus glue; a small-integer multiply maps to one DSP;
    /// a `k`-term shift-add lane is pure fabric (k barrel shifters + k−1
    /// adders + accumulator) with a shared initiation interval of `k`
    /// cycles, and the whole shift-add design keeps a handful of DSPs for
    /// output accumulation (Table 6 shows 4–16).
    pub fn lane_cost(&self) -> LaneCost {
        match *self {
            Datapath::Float32 => LaneCost {
                dsp: 5.0,
                lut: 300.0,
                ff: 250.0,
                dsp_overhead: 2,
                cycles_per_mac: 1.0,
            },
            Datapath::FixedPoint { .. } => LaneCost {
                dsp: 1.0,
                lut: 80.0,
                ff: 60.0,
                dsp_overhead: 2,
                cycles_per_mac: 1.0,
            },
            Datapath::ShiftAdd { mean_k, .. } => LaneCost {
                dsp: 0.0,
                lut: (60.0 * mean_k + 30.0 * (mean_k - 1.0).max(0.0)) as f64,
                ff: (50.0 * mean_k) as f64,
                dsp_overhead: 4,
                cycles_per_mac: mean_k.max(1.0) as f64,
            },
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            Datapath::Float32 => "fp32".to_string(),
            Datapath::FixedPoint {
                weight_bits,
                act_bits,
            } => format!("fixed{weight_bits}W{act_bits}A"),
            Datapath::ShiftAdd { mean_k, .. } => format!("shift-add(k̄={mean_k:.2})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_mapping() {
        assert_eq!(
            Datapath::from_scheme(&QuantScheme::full(), None),
            Datapath::Float32
        );
        assert_eq!(
            Datapath::from_scheme(&QuantScheme::l1(), None),
            Datapath::ShiftAdd {
                mean_k: 1.0,
                act_bits: 8
            }
        );
        let fl = Datapath::from_scheme(&QuantScheme::flight(1e-5), Some(1.5));
        assert_eq!(
            fl,
            Datapath::ShiftAdd {
                mean_k: 1.5,
                act_bits: 8
            }
        );
    }

    #[test]
    #[should_panic(expected = "needs the trained mean k")]
    fn flight_requires_mean_k() {
        Datapath::from_scheme(&QuantScheme::flight(1e-5), None);
    }

    #[test]
    fn shift_add_uses_no_dsp_lanes() {
        let cost = Datapath::ShiftAdd {
            mean_k: 2.0,
            act_bits: 8,
        }
        .lane_cost();
        assert_eq!(cost.dsp, 0.0);
        assert!(cost.dsp_overhead > 0);
        assert_eq!(cost.cycles_per_mac, 2.0);
    }

    #[test]
    fn lightnn1_retires_macs_faster_than_lightnn2() {
        let k1 = Datapath::ShiftAdd {
            mean_k: 1.0,
            act_bits: 8,
        }
        .lane_cost();
        let k2 = Datapath::ShiftAdd {
            mean_k: 2.0,
            act_bits: 8,
        }
        .lane_cost();
        assert!(k1.cycles_per_mac < k2.cycles_per_mac);
        assert!(k1.lut < k2.lut);
    }

    #[test]
    fn float_needs_the_most_dsp() {
        let f = Datapath::Float32.lane_cost();
        let q = Datapath::FixedPoint {
            weight_bits: 4,
            act_bits: 8,
        }
        .lane_cost();
        assert!(f.dsp > q.dsp);
    }
}
