//! Analytical FPGA resource and throughput model of a Xilinx Zynq ZC706.
//!
//! The paper implements each network's largest convolutional layer with
//! Vivado HLS on a ZC706 at 100 MHz, using identical pragmas for every
//! quantization scheme, and reports throughput (Tables 2–5) and resource
//! utilization (Table 6). This crate substitutes an analytical model that
//! reproduces the *binding structure* the paper describes:
//!
//! * full-precision and fixed-point multipliers consume DSP slices
//!   (scarce: 900), so their batch parallelism is DSP-bound (and
//!   BRAM-bound for the fp32 design, whose activations are 4× larger);
//! * (F)LightNN shift-add "multipliers" live in LUT fabric and need DSPs
//!   only for a few shared accumulators, so their batch parallelism runs
//!   into the BRAM limit instead — exactly Table 6's finding;
//! * a `k`-shift multiplier shares its barrel shifter across the `k`
//!   terms, so its initiation interval grows with `k`: LightNN-1 retires
//!   MACs twice as fast as LightNN-2 per lane, and FLightNN interpolates
//!   through its mean per-filter shift count.
//!
//! See `DESIGN.md` §2 for the substitution argument and the cost-model
//! constants below for the calibration knobs.

pub mod budget;
pub mod datapath;
pub mod implement;
pub mod report;

pub use budget::{ResourceBudget, ResourceUsage, ZC706};
pub use datapath::Datapath;
pub use implement::{implement_layer, DesignError, Implementation, LayerDesign};
pub use report::{utilization_row, UtilizationRow};
