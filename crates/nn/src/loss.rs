//! Classification losses and metrics.

use flight_tensor::Tensor;

/// Softmax cross-entropy over a batch of logits.
///
/// `logits` is `[n, classes]`, `labels` has `n` class indices. Returns the
/// mean loss and the gradient `∂L/∂logits` (already divided by the batch
/// size, ready to feed into [`Layer::backward`](crate::Layer::backward)).
///
/// # Panics
///
/// Panics if shapes disagree or a label is out of range.
///
/// # Example
///
/// ```
/// use flight_nn::loss::softmax_cross_entropy;
/// use flight_tensor::Tensor;
///
/// let logits = Tensor::from_vec(vec![10.0, -10.0], &[1, 2]);
/// let (loss, _grad) = softmax_cross_entropy(&logits, &[0]);
/// assert!(loss < 1e-3); // confident and correct
/// ```
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    assert_eq!(logits.shape().rank(), 2, "logits must be [n, classes]");
    let (n, classes) = (logits.dims()[0], logits.dims()[1]);
    assert_eq!(
        labels.len(),
        n,
        "labels length {} != batch {n}",
        labels.len()
    );

    let mut grad = Tensor::zeros(&[n, classes]);
    let mut total = 0.0f64;
    for (i, &label) in labels.iter().enumerate() {
        let row = logits.outer(i);
        assert!(
            label < classes,
            "label {label} out of range for {classes} classes"
        );
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f64> = row.iter().map(|&x| ((x - max) as f64).exp()).collect();
        let z: f64 = exps.iter().sum();
        let log_p = (row[label] - max) as f64 - z.ln();
        total -= log_p;
        let grow = grad.outer_mut(i);
        for (j, &e) in exps.iter().enumerate() {
            let p = (e / z) as f32;
            grow[j] = (p - if j == label { 1.0 } else { 0.0 }) / n as f32;
        }
    }
    ((total / n as f64) as f32, grad)
}

/// Softmax probabilities of a logits batch, `[n, classes]`.
///
/// # Panics
///
/// Panics if `logits` is not rank 2.
pub fn softmax(logits: &Tensor) -> Tensor {
    assert_eq!(logits.shape().rank(), 2, "logits must be [n, classes]");
    let (n, classes) = (logits.dims()[0], logits.dims()[1]);
    let mut out = Tensor::zeros(&[n, classes]);
    for i in 0..n {
        let row = logits.outer(i);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = row.iter().map(|&x| (x - max).exp()).collect();
        let z: f32 = exps.iter().sum();
        for (o, e) in out.outer_mut(i).iter_mut().zip(exps) {
            *o = e / z;
        }
    }
    out
}

/// Fraction of rows whose argmax matches the label (top-1 accuracy).
///
/// # Panics
///
/// Panics if shapes disagree.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f32 {
    top_k_accuracy(logits, labels, 1)
}

/// Fraction of rows whose label is among the `k` highest logits.
///
/// The paper reports top-5 accuracy for ImageNet (Table 5) and top-1
/// elsewhere.
///
/// # Panics
///
/// Panics if shapes disagree or `k == 0`.
pub fn top_k_accuracy(logits: &Tensor, labels: &[usize], k: usize) -> f32 {
    assert_eq!(logits.shape().rank(), 2, "logits must be [n, classes]");
    assert!(k > 0, "k must be positive");
    let (n, classes) = (logits.dims()[0], logits.dims()[1]);
    assert_eq!(labels.len(), n, "labels length mismatch");
    if n == 0 {
        return 0.0;
    }
    let k = k.min(classes);
    let mut hits = 0usize;
    for i in 0..n {
        let row = logits.outer(i);
        let target = row[labels[i]];
        // Rank = number of strictly larger logits; ties resolve optimistically,
        // deterministic because inputs are finite floats.
        let larger = row.iter().filter(|&&x| x > target).count();
        if larger < k {
            hits += 1;
        }
    }
    hits as f32 / n as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use flight_tensor::{numerical_gradient, uniform, TensorRng};

    #[test]
    fn loss_is_log_classes_for_uniform_logits() {
        let logits = Tensor::zeros(&[4, 10]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 3, 5, 9]);
        assert!((loss - 10.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_matches_numerical() {
        let mut rng = TensorRng::seed(17);
        let logits = uniform(&mut rng, &[3, 4], -2.0, 2.0);
        let labels = [2usize, 0, 3];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let ngrad = numerical_gradient(&logits, 1e-3, |t| softmax_cross_entropy(t, &labels).0);
        assert!(flight_tensor::grad_check::gradient_relative_error(&grad, &ngrad) < 1e-2);
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let mut rng = TensorRng::seed(19);
        let logits = uniform(&mut rng, &[2, 5], -1.0, 1.0);
        let (_, grad) = softmax_cross_entropy(&logits, &[1, 4]);
        for i in 0..2 {
            let s: f32 = grad.outer(i).iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_rows_are_distributions() {
        let mut rng = TensorRng::seed(21);
        let logits = uniform(&mut rng, &[3, 6], -5.0, 5.0);
        let p = softmax(&logits);
        for i in 0..3 {
            let s: f32 = p.outer(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(p.outer(i).iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn accuracy_counts_correct_argmax() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 9.0, 0.0], &[2, 2]);
        assert_eq!(accuracy(&logits, &[1, 0]), 1.0);
        assert_eq!(accuracy(&logits, &[0, 0]), 0.5);
    }

    #[test]
    fn top_k_is_monotone_in_k() {
        let mut rng = TensorRng::seed(23);
        let logits = uniform(&mut rng, &[32, 10], -1.0, 1.0);
        let labels: Vec<usize> = (0..32).map(|i| i % 10).collect();
        let a1 = top_k_accuracy(&logits, &labels, 1);
        let a3 = top_k_accuracy(&logits, &labels, 3);
        let a10 = top_k_accuracy(&logits, &labels, 10);
        assert!(a1 <= a3 && a3 <= a10);
        assert_eq!(a10, 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_label() {
        softmax_cross_entropy(&Tensor::zeros(&[1, 3]), &[3]);
    }

    #[test]
    fn extreme_logits_are_stable() {
        let logits = Tensor::from_vec(vec![1000.0, -1000.0], &[1, 2]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[1]);
        assert!(loss.is_finite());
        assert!(grad.as_slice().iter().all(|g| g.is_finite()));
    }
}
