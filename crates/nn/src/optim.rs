//! Gradient-descent optimizers.

use std::collections::HashMap;

use flight_tensor::Tensor;

use crate::layer::{Layer, Param};

/// A first-order optimizer stepping a network's parameters from their
/// accumulated gradients.
pub trait Optimizer {
    /// Applies one update step to every parameter of `net` and leaves the
    /// gradients untouched (call [`Layer::zero_grad`] before the next
    /// accumulation).
    fn step(&mut self, net: &mut dyn Layer);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Replaces the learning rate (for schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Plain stochastic gradient descent with optional classical momentum.
///
/// # Example
///
/// ```
/// use flight_nn::optim::{Optimizer, Sgd};
/// let opt = Sgd::new(0.1).with_momentum(0.9);
/// assert_eq!(opt.learning_rate(), 0.1);
/// ```
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: HashMap<u64, Tensor>,
}

impl Sgd {
    /// Creates SGD with learning rate `lr` and no momentum.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    pub fn new(lr: f32) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "invalid learning rate {lr}");
        Sgd {
            lr,
            momentum: 0.0,
            velocity: HashMap::new(),
        }
    }

    /// Enables classical momentum with coefficient `momentum`.
    ///
    /// # Panics
    ///
    /// Panics if `momentum` is outside `[0, 1)`.
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        assert!(
            (0.0..1.0).contains(&momentum),
            "invalid momentum {momentum}"
        );
        self.momentum = momentum;
        self
    }

    fn update(&mut self, p: &mut Param) {
        if self.momentum == 0.0 {
            p.value.axpy(-self.lr, &p.grad);
            return;
        }
        let v = self
            .velocity
            .entry(p.id())
            .or_insert_with(|| Tensor::zeros(p.value.dims()));
        for (vi, &gi) in v.as_mut_slice().iter_mut().zip(p.grad.as_slice()) {
            *vi = self.momentum * *vi + gi;
        }
        p.value.axpy(-self.lr, v);
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, net: &mut dyn Layer) {
        // Work around the borrow of self inside the closure by moving the
        // update through a raw local: collect params first is wasteful, so
        // use a small trampoline instead.
        let mut this = std::mem::replace(self, Sgd::new(1.0));
        net.visit_params(&mut |p| this.update(p));
        *self = this;
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        assert!(lr.is_finite() && lr > 0.0, "invalid learning rate {lr}");
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba, ICLR 2015) — the optimizer the paper trains all its
/// models with (§5.1).
///
/// # Example
///
/// ```
/// use flight_nn::optim::{Adam, Optimizer};
/// let opt = Adam::new(1e-3);
/// assert_eq!(opt.learning_rate(), 1e-3);
/// ```
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    moments: HashMap<u64, (Tensor, Tensor)>,
}

impl Adam {
    /// Creates Adam with the standard β₁ = 0.9, β₂ = 0.999, ε = 1e-8.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    pub fn new(lr: f32) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "invalid learning rate {lr}");
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            moments: HashMap::new(),
        }
    }

    fn update(&mut self, p: &mut Param) {
        let (m, v) = self
            .moments
            .entry(p.id())
            .or_insert_with(|| (Tensor::zeros(p.value.dims()), Tensor::zeros(p.value.dims())));
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let lr = self.lr;
        let (b1, b2, eps) = (self.beta1, self.beta2, self.eps);
        for ((mi, vi), (&gi, xi)) in m
            .as_mut_slice()
            .iter_mut()
            .zip(v.as_mut_slice())
            .zip(p.grad.as_slice().iter().zip(p.value.as_mut_slice()))
        {
            *mi = b1 * *mi + (1.0 - b1) * gi;
            *vi = b2 * *vi + (1.0 - b2) * gi * gi;
            let mhat = *mi / bc1;
            let vhat = *vi / bc2;
            *xi -= lr * mhat / (vhat.sqrt() + eps);
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, net: &mut dyn Layer) {
        self.t += 1;
        let mut this = std::mem::replace(self, Adam::new(1.0));
        net.visit_params(&mut |p| this.update(p));
        *self = this;
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        assert!(lr.is_finite() && lr > 0.0, "invalid learning rate {lr}");
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Linear, Sequential};
    use crate::loss::softmax_cross_entropy;
    use flight_tensor::{uniform, TensorRng};

    fn toy_problem() -> (Sequential, Tensor, Vec<usize>) {
        let mut rng = TensorRng::seed(2);
        let mut net = Sequential::new();
        net.push(Linear::new(&mut rng, 4, 8));
        net.push(crate::layers::LeakyRelu::default());
        net.push(Linear::new(&mut rng, 8, 3));
        // Linearly separable toy batch: class = argmax of first 3 features.
        let x = uniform(&mut rng, &[24, 4], -1.0, 1.0);
        let labels: Vec<usize> = (0..24)
            .map(|i| {
                let row = x.outer(i);
                let mut best = 0;
                for j in 1..3 {
                    if row[j] > row[best] {
                        best = j;
                    }
                }
                best
            })
            .collect();
        (net, x, labels)
    }

    fn train_loss<O: Optimizer>(opt: &mut O, steps: usize) -> f32 {
        let (mut net, x, labels) = toy_problem();
        let mut last = f32::INFINITY;
        for _ in 0..steps {
            net.zero_grad();
            let logits = net.forward(&x, true);
            let (loss, grad) = softmax_cross_entropy(&logits, &labels);
            net.backward(&grad);
            opt.step(&mut net);
            last = loss;
        }
        last
    }

    #[test]
    fn sgd_reduces_loss() {
        let final_loss = train_loss(&mut Sgd::new(0.1), 150);
        assert!(final_loss < 0.4, "loss stayed at {final_loss}");
    }

    #[test]
    fn sgd_with_momentum_reduces_loss() {
        let final_loss = train_loss(&mut Sgd::new(0.05).with_momentum(0.9), 150);
        assert!(final_loss < 0.4, "loss stayed at {final_loss}");
    }

    #[test]
    fn adam_reduces_loss_faster_than_one_step() {
        let one = train_loss(&mut Adam::new(1e-2), 1);
        let many = train_loss(&mut Adam::new(1e-2), 200);
        assert!(many < one * 0.3, "adam failed to converge: {one} -> {many}");
    }

    #[test]
    fn learning_rate_is_settable() {
        let mut opt = Adam::new(1e-3);
        opt.set_learning_rate(1e-4);
        assert_eq!(opt.learning_rate(), 1e-4);
    }

    #[test]
    #[should_panic(expected = "invalid learning rate")]
    fn rejects_zero_lr() {
        Sgd::new(0.0);
    }
}
