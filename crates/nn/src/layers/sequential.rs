//! Sequential container.

use flight_tensor::Tensor;

use crate::layer::{Layer, Param};

/// An ordered chain of layers applied one after another.
///
/// `Sequential` is itself a [`Layer`], so chains nest (the ResNet blocks
/// use this to hold their main and shortcut paths).
///
/// # Example
///
/// ```
/// use flight_nn::layers::{LeakyRelu, Linear, Sequential};
/// use flight_nn::Layer;
/// use flight_tensor::{Tensor, TensorRng};
///
/// let mut rng = TensorRng::seed(0);
/// let mut net = Sequential::new();
/// net.push(Linear::new(&mut rng, 3, 5));
/// net.push(LeakyRelu::default());
/// let y = net.forward(&Tensor::zeros(&[2, 3]), false);
/// assert_eq!(y.dims(), &[2, 5]);
/// ```
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates an empty chain.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer to the end of the chain.
    pub fn push<L: Layer + 'static>(&mut self, layer: L) {
        self.layers.push(Box::new(layer));
    }

    /// Appends an already-boxed layer.
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers in the chain.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// `true` when the chain has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Iterates over the contained layers.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, Box<dyn Layer>> {
        self.layers.iter_mut()
    }

    /// A one-line-per-layer summary of the architecture.
    pub fn summary(&self) -> String {
        self.layers
            .iter()
            .map(|l| l.name())
            .collect::<Vec<_>>()
            .join("\n")
    }
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Sequential({} layers)", self.layers.len())
    }
}

impl Layer for Sequential {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, train);
        }
        x
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        for layer in &mut self.layers {
            layer.visit_params(visitor);
        }
    }

    fn visit_state(&mut self, visitor: &mut dyn FnMut(&mut Tensor)) {
        for layer in &mut self.layers {
            layer.visit_state(visitor);
        }
    }

    fn name(&self) -> String {
        format!("sequential[{}]", self.layers.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{LeakyRelu, Linear};
    use flight_tensor::TensorRng;

    #[test]
    fn empty_sequential_is_identity() {
        let mut net = Sequential::new();
        let x = Tensor::from_slice(&[1.0, 2.0]);
        assert_eq!(net.forward(&x, true), x);
        assert_eq!(net.backward(&x), x);
    }

    #[test]
    fn params_are_visited_in_order() {
        let mut rng = TensorRng::seed(1);
        let mut net = Sequential::new();
        net.push(Linear::new(&mut rng, 2, 3));
        net.push(LeakyRelu::default());
        net.push(Linear::new(&mut rng, 3, 1));
        // 2*3 + 3 + 3*1 + 1 = 13 scalars across 4 params.
        assert_eq!(net.param_count(), 13);
        let mut count = 0;
        net.visit_params(&mut |_| count += 1);
        assert_eq!(count, 4);
    }

    #[test]
    fn summary_lists_layers() {
        let mut rng = TensorRng::seed(1);
        let mut net = Sequential::new();
        net.push(Linear::new(&mut rng, 2, 2));
        net.push(LeakyRelu::default());
        let s = net.summary();
        assert!(s.contains("linear(2→2)"));
        assert!(s.contains("leaky_relu"));
    }
}
