//! Batch normalization.

use flight_tensor::Tensor;

use crate::layer::{Layer, Param};

/// 2-D batch normalization over `[n, c, h, w]` activations.
///
/// Normalizes each channel over the batch and spatial axes with learned
/// scale (`gamma`) and shift (`beta`), maintaining running statistics for
/// inference — the paper attaches one of these after every convolution
/// (§5.1).
///
/// # Example
///
/// ```
/// use flight_nn::layers::BatchNorm2d;
/// use flight_nn::Layer;
/// use flight_tensor::{uniform, TensorRng};
///
/// let mut rng = TensorRng::seed(0);
/// let mut bn = BatchNorm2d::new(4);
/// let x = uniform(&mut rng, &[8, 4, 3, 3], -3.0, 5.0);
/// let y = bn.forward(&x, true);
/// // Each channel of the training output is standardized.
/// assert!(y.mean().abs() < 1e-4);
/// ```
#[derive(Debug, Clone)]
pub struct BatchNorm2d {
    gamma: Param,
    beta: Param,
    running_mean: Tensor,
    running_var: Tensor,
    momentum: f32,
    eps: f32,
    cache: Option<BnCache>,
}

#[derive(Debug, Clone)]
struct BnCache {
    xhat: Tensor,
    inv_std: Vec<f32>, // per channel
}

impl BatchNorm2d {
    /// Creates a batch-norm layer for `channels` feature maps.
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0`.
    pub fn new(channels: usize) -> Self {
        assert!(channels > 0, "batchnorm needs at least one channel");
        BatchNorm2d {
            gamma: Param::new(Tensor::ones(&[channels])),
            beta: Param::new(Tensor::zeros(&[channels])),
            running_mean: Tensor::zeros(&[channels]),
            running_var: Tensor::ones(&[channels]),
            momentum: 0.1,
            eps: 1e-5,
            cache: None,
        }
    }

    /// Number of normalized channels.
    pub fn channels(&self) -> usize {
        self.gamma.value.len()
    }

    /// The learned scale (γ) parameter.
    pub fn gamma(&self) -> &Param {
        &self.gamma
    }

    /// The learned shift (β) parameter.
    pub fn beta(&self) -> &Param {
        &self.beta
    }

    /// Running mean used at inference time.
    pub fn running_mean(&self) -> &Tensor {
        &self.running_mean
    }

    /// Running variance used at inference time.
    pub fn running_var(&self) -> &Tensor {
        &self.running_var
    }

    /// Numerical-stability epsilon.
    pub fn eps(&self) -> f32 {
        self.eps
    }

    fn check_input(&self, input: &Tensor) {
        assert_eq!(
            input.shape().rank(),
            4,
            "batchnorm input must be [n, c, h, w]"
        );
        assert_eq!(
            input.dims()[1],
            self.channels(),
            "input channels {} != batchnorm channels {}",
            input.dims()[1],
            self.channels()
        );
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        self.check_input(input);
        let (n, c, h, w) = (
            input.dims()[0],
            input.dims()[1],
            input.dims()[2],
            input.dims()[3],
        );
        let per_channel = n * h * w;
        let plane = h * w;
        let data = input.as_slice();
        let mut out = Tensor::zeros(input.dims());

        let mut xhat = train.then(|| Tensor::zeros(input.dims()));
        let mut inv_stds = vec![0.0f32; c];

        for (ch, inv_std_slot) in inv_stds.iter_mut().enumerate() {
            let (mean, var) = if train {
                let mut sum = 0.0f64;
                let mut sq = 0.0f64;
                for b in 0..n {
                    let base = (b * c + ch) * plane;
                    for &v in &data[base..base + plane] {
                        sum += v as f64;
                        sq += (v as f64) * (v as f64);
                    }
                }
                let mean = (sum / per_channel as f64) as f32;
                let var =
                    ((sq / per_channel as f64) - (mean as f64) * (mean as f64)).max(0.0) as f32;
                // Update running statistics (biased variance, like PyTorch's
                // default track of batch stats scaled by momentum).
                self.running_mean.as_mut_slice()[ch] =
                    (1.0 - self.momentum) * self.running_mean.as_slice()[ch] + self.momentum * mean;
                self.running_var.as_mut_slice()[ch] =
                    (1.0 - self.momentum) * self.running_var.as_slice()[ch] + self.momentum * var;
                (mean, var)
            } else {
                (
                    self.running_mean.as_slice()[ch],
                    self.running_var.as_slice()[ch],
                )
            };

            let inv_std = 1.0 / (var + self.eps).sqrt();
            *inv_std_slot = inv_std;
            let g = self.gamma.value.as_slice()[ch];
            let b0 = self.beta.value.as_slice()[ch];
            for b in 0..n {
                let base = (b * c + ch) * plane;
                for i in 0..plane {
                    let xh = (data[base + i] - mean) * inv_std;
                    out.as_mut_slice()[base + i] = g * xh + b0;
                    if let Some(xh_t) = xhat.as_mut() {
                        xh_t.as_mut_slice()[base + i] = xh;
                    }
                }
            }
        }

        self.cache = xhat.map(|xhat| BnCache {
            xhat,
            inv_std: inv_stds,
        });
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self
            .cache
            .take()
            .expect("BatchNorm2d::backward called without a training forward pass");
        let (n, c, h, w) = (
            grad_out.dims()[0],
            grad_out.dims()[1],
            grad_out.dims()[2],
            grad_out.dims()[3],
        );
        let plane = h * w;
        let m = (n * plane) as f32;
        let dy = grad_out.as_slice();
        let xh = cache.xhat.as_slice();
        let mut dx = Tensor::zeros(grad_out.dims());

        for ch in 0..c {
            let mut sum_dy = 0.0f64;
            let mut sum_dy_xhat = 0.0f64;
            for b in 0..n {
                let base = (b * c + ch) * plane;
                for i in 0..plane {
                    sum_dy += dy[base + i] as f64;
                    sum_dy_xhat += (dy[base + i] * xh[base + i]) as f64;
                }
            }
            self.gamma.value.len(); // channels sanity (noop)
            self.gamma.grad.as_mut_slice()[ch] += sum_dy_xhat as f32;
            self.beta.grad.as_mut_slice()[ch] += sum_dy as f32;

            let g = self.gamma.value.as_slice()[ch];
            let inv_std = cache.inv_std[ch];
            let mean_dy = sum_dy as f32 / m;
            let mean_dy_xhat = sum_dy_xhat as f32 / m;
            for b in 0..n {
                let base = (b * c + ch) * plane;
                for i in 0..plane {
                    dx.as_mut_slice()[base + i] =
                        g * inv_std * (dy[base + i] - mean_dy - xh[base + i] * mean_dy_xhat);
                }
            }
        }
        dx
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        visitor(&mut self.gamma);
        visitor(&mut self.beta);
    }

    fn visit_state(&mut self, visitor: &mut dyn FnMut(&mut Tensor)) {
        visitor(&mut self.running_mean);
        visitor(&mut self.running_var);
    }

    fn name(&self) -> String {
        format!("batchnorm2d({})", self.channels())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flight_tensor::{numerical_gradient, uniform, TensorRng};

    #[test]
    fn training_output_is_standardized_per_channel() {
        let mut rng = TensorRng::seed(7);
        let mut bn = BatchNorm2d::new(2);
        let x = uniform(&mut rng, &[16, 2, 4, 4], -3.0, 9.0);
        let y = bn.forward(&x, true);
        // Channel 0 statistics.
        let (n, c, plane) = (16, 2, 16);
        for ch in 0..c {
            let mut vals = Vec::new();
            for b in 0..n {
                let base = (b * c + ch) * plane;
                vals.extend_from_slice(&y.as_slice()[base..base + plane]);
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-3, "channel {ch} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "channel {ch} var {var}");
        }
    }

    #[test]
    fn eval_uses_running_statistics() {
        let mut rng = TensorRng::seed(8);
        let mut bn = BatchNorm2d::new(1);
        // Feed shifted data repeatedly so running stats converge near them.
        let x = uniform(&mut rng, &[32, 1, 2, 2], 4.0, 6.0);
        for _ in 0..200 {
            bn.forward(&x, true);
        }
        let y = bn.forward(&x, false);
        // Eval output should be roughly standardized too, since running
        // stats track the (stationary) batch stats.
        assert!(y.mean().abs() < 0.1);
    }

    #[test]
    fn backward_matches_numerical() {
        let mut rng = TensorRng::seed(9);
        let x = uniform(&mut rng, &[3, 2, 2, 2], -1.0, 1.0);
        let mask = uniform(&mut rng, &[3, 2, 2, 2], -1.0, 1.0);

        let mut bn = BatchNorm2d::new(2);
        bn.gamma.value = Tensor::from_slice(&[1.3, 0.7]);
        bn.beta.value = Tensor::from_slice(&[0.2, -0.4]);
        bn.forward(&x, true);
        let dx = bn.backward(&mask);

        let gamma = bn.gamma.value.clone();
        let beta = bn.beta.value.clone();
        let ndx = numerical_gradient(&x, 1e-2, |t| {
            let mut b = BatchNorm2d::new(2);
            b.gamma.value = gamma.clone();
            b.beta.value = beta.clone();
            (&b.forward(t, true) * &mask).sum()
        });
        let err = flight_tensor::grad_check::gradient_relative_error(&dx, &ndx);
        assert!(err < 2e-2, "relative error {err}");
    }

    #[test]
    fn param_gradients_match_numerical() {
        let mut rng = TensorRng::seed(10);
        let x = uniform(&mut rng, &[4, 2, 2, 2], -1.0, 1.0);
        let mask = uniform(&mut rng, &[4, 2, 2, 2], -1.0, 1.0);

        let mut bn = BatchNorm2d::new(2);
        bn.forward(&x, true);
        bn.backward(&mask);

        let ng = numerical_gradient(&Tensor::ones(&[2]), 1e-2, |g| {
            let mut b = BatchNorm2d::new(2);
            b.gamma.value = g.clone();
            (&b.forward(&x, true) * &mask).sum()
        });
        let err = flight_tensor::grad_check::gradient_relative_error(&bn.gamma.grad, &ng);
        assert!(err < 2e-2, "gamma grad error {err}");
    }

    #[test]
    #[should_panic(expected = "channels")]
    fn rejects_wrong_channel_count() {
        let mut bn = BatchNorm2d::new(3);
        bn.forward(&Tensor::zeros(&[1, 2, 2, 2]), false);
    }
}
