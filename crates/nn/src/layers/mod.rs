//! Network building blocks.
//!
//! Each block implements [`Layer`](crate::Layer). The heavy math lives in
//! [`functional`] as free functions over tensors so that the quantized
//! layers in the `flightnn` crate can reuse the exact same forward and
//! backward kernels with substituted (quantized) weights.

pub mod activation;
pub mod conv;
pub mod functional;
pub mod linear;
pub mod norm;
pub mod pool;
pub mod residual;
pub mod sequential;

pub use activation::LeakyRelu;
pub use conv::Conv2d;
pub use linear::{Flatten, Linear};
pub use norm::BatchNorm2d;
pub use pool::{GlobalAvgPool, MaxPool2d};
pub use residual::ResidualBlock;
pub use sequential::Sequential;
