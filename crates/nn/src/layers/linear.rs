//! Fully connected layer and the flatten adaptor.

use flight_tensor::{kaiming_uniform, Tensor, TensorRng};

use crate::layer::{Layer, Param};
use crate::layers::functional::{linear_backward, linear_forward, LinearCache};

/// A fully connected (affine) layer: `y = x·Wᵀ + b`.
///
/// # Example
///
/// ```
/// use flight_nn::layers::Linear;
/// use flight_nn::Layer;
/// use flight_tensor::{Tensor, TensorRng};
///
/// let mut rng = TensorRng::seed(0);
/// let mut fc = Linear::new(&mut rng, 10, 4);
/// let y = fc.forward(&Tensor::zeros(&[2, 10]), false);
/// assert_eq!(y.dims(), &[2, 4]);
/// ```
#[derive(Debug, Clone)]
pub struct Linear {
    weight: Param,
    bias: Param,
    cache: Option<LinearCache>,
}

impl Linear {
    /// Creates a linear layer with Kaiming-uniform weights and zero bias.
    ///
    /// # Panics
    ///
    /// Panics if `in_features == 0` or `out_features == 0`.
    pub fn new(rng: &mut TensorRng, in_features: usize, out_features: usize) -> Self {
        assert!(in_features > 0 && out_features > 0, "zero-sized linear");
        Linear {
            weight: Param::new(kaiming_uniform(
                rng,
                &[out_features, in_features],
                in_features,
            )),
            bias: Param::new(Tensor::zeros(&[out_features])),
            cache: None,
        }
    }

    /// The weight parameter (`[out, in]`).
    pub fn weight(&self) -> &Param {
        &self.weight
    }

    /// Mutable access to the weight parameter.
    pub fn weight_mut(&mut self) -> &mut Param {
        &mut self.weight
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weight.value.dims()[0]
    }
}

impl Layer for Linear {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let (out, cache) = linear_forward(input, &self.weight.value, &self.bias.value, train);
        self.cache = cache;
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self
            .cache
            .take()
            .expect("Linear::backward called without a training forward pass");
        let (dx, dw, db) = linear_backward(&cache, &self.weight.value, grad_out);
        self.weight.grad.axpy(1.0, &dw);
        self.bias.grad.axpy(1.0, &db);
        dx
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        visitor(&mut self.weight);
        visitor(&mut self.bias);
    }

    fn name(&self) -> String {
        let d = self.weight.value.dims();
        format!("linear({}→{})", d[1], d[0])
    }
}

/// Reshapes `[n, c, h, w]` activations to `[n, c*h*w]` on the way into the
/// classifier head, and reverses the reshape in backward.
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    input_dims: Vec<usize>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        assert!(
            input.shape().rank() >= 2,
            "flatten needs at least a batch axis and one feature axis"
        );
        self.input_dims = input.dims().to_vec();
        let n = input.dims()[0];
        let rest = input.len() / n.max(1);
        input.reshape(&[n, rest])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        grad_out.reshape(&self.input_dims)
    }

    fn visit_params(&mut self, _visitor: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> String {
        "flatten".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_computes_affine_map() {
        let mut rng = TensorRng::seed(1);
        let mut fc = Linear::new(&mut rng, 2, 1);
        fc.weight_mut().value = Tensor::from_vec(vec![2.0, -1.0], &[1, 2]);
        let y = fc.forward(&Tensor::from_vec(vec![3.0, 4.0], &[1, 2]), false);
        assert_eq!(y.as_slice(), &[2.0]);
    }

    #[test]
    fn flatten_round_trips() {
        let mut f = Flatten::new();
        let x = Tensor::from_vec((0..24).map(|v| v as f32).collect(), &[2, 3, 2, 2]);
        let y = f.forward(&x, true);
        assert_eq!(y.dims(), &[2, 12]);
        let back = f.backward(&y);
        assert_eq!(back, x);
    }

    #[test]
    fn linear_gradient_flows() {
        let mut rng = TensorRng::seed(5);
        let mut fc = Linear::new(&mut rng, 3, 2);
        let x = flight_tensor::uniform(&mut rng, &[4, 3], -1.0, 1.0);
        fc.forward(&x, true);
        let dx = fc.backward(&Tensor::ones(&[4, 2]));
        assert_eq!(dx.dims(), &[4, 3]);
        assert!(fc.weight().grad.abs_max() > 0.0);
    }
}
