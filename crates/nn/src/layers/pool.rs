//! Spatial pooling layers.

use flight_tensor::Tensor;

use crate::layer::{Layer, Param};

/// Max pooling over non-overlapping square windows.
///
/// The paper's VGG-style networks downsample with 2×2 max pooling after
/// selected conv blocks (§5.1).
///
/// # Example
///
/// ```
/// use flight_nn::layers::MaxPool2d;
/// use flight_nn::Layer;
/// use flight_tensor::Tensor;
///
/// let mut pool = MaxPool2d::new(2);
/// let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
/// let y = pool.forward(&x, false);
/// assert_eq!(y.as_slice(), &[4.0]);
/// ```
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    window: usize,
    argmax: Option<Vec<usize>>,
    input_dims: Vec<usize>,
}

impl MaxPool2d {
    /// Creates a max-pool layer with the given square window (stride ==
    /// window, i.e. non-overlapping).
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "pool window must be positive");
        MaxPool2d {
            window,
            argmax: None,
            input_dims: Vec::new(),
        }
    }

    /// The pooling window side length.
    pub fn window(&self) -> usize {
        self.window
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        assert_eq!(
            input.shape().rank(),
            4,
            "maxpool input must be [n, c, h, w]"
        );
        let (n, c, h, w) = (
            input.dims()[0],
            input.dims()[1],
            input.dims()[2],
            input.dims()[3],
        );
        let k = self.window;
        assert!(
            h % k == 0 && w % k == 0,
            "input {h}x{w} not divisible by pool window {k}"
        );
        let (oh, ow) = (h / k, w / k);
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        let mut argmax = train.then(|| vec![0usize; n * c * oh * ow]);
        let data = input.as_slice();

        for b in 0..n {
            for ch in 0..c {
                let in_base = (b * c + ch) * h * w;
                let out_base = (b * c + ch) * oh * ow;
                for oi in 0..oh {
                    for oj in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for di in 0..k {
                            for dj in 0..k {
                                let idx = in_base + (oi * k + di) * w + (oj * k + dj);
                                if data[idx] > best {
                                    best = data[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        out.as_mut_slice()[out_base + oi * ow + oj] = best;
                        if let Some(am) = argmax.as_mut() {
                            am[out_base + oi * ow + oj] = best_idx;
                        }
                    }
                }
            }
        }

        self.input_dims = input.dims().to_vec();
        self.argmax = argmax;
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let argmax = self
            .argmax
            .take()
            .expect("MaxPool2d::backward called without a training forward pass");
        assert_eq!(grad_out.len(), argmax.len(), "grad_out size mismatch");
        let mut dx = Tensor::zeros(&self.input_dims);
        for (i, &src) in argmax.iter().enumerate() {
            dx.as_mut_slice()[src] += grad_out.as_slice()[i];
        }
        dx
    }

    fn visit_params(&mut self, _visitor: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> String {
        format!("maxpool2d({0}x{0})", self.window)
    }
}

/// Global average pooling: `[n, c, h, w]` → `[n, c]`.
///
/// Used as the head of the ResNet configurations before the classifier.
#[derive(Debug, Clone, Default)]
pub struct GlobalAvgPool {
    input_dims: Vec<usize>,
}

impl GlobalAvgPool {
    /// Creates a global average pooling layer.
    pub fn new() -> Self {
        GlobalAvgPool::default()
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        assert_eq!(input.shape().rank(), 4, "gap input must be [n, c, h, w]");
        let (n, c, h, w) = (
            input.dims()[0],
            input.dims()[1],
            input.dims()[2],
            input.dims()[3],
        );
        self.input_dims = input.dims().to_vec();
        let plane = h * w;
        let mut out = Tensor::zeros(&[n, c]);
        for b in 0..n {
            for ch in 0..c {
                let base = (b * c + ch) * plane;
                let s: f32 = input.as_slice()[base..base + plane].iter().sum();
                out.as_mut_slice()[b * c + ch] = s / plane as f32;
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (n, c, h, w) = (
            self.input_dims[0],
            self.input_dims[1],
            self.input_dims[2],
            self.input_dims[3],
        );
        assert_eq!(grad_out.dims(), &[n, c], "grad_out shape mismatch");
        let plane = h * w;
        let mut dx = Tensor::zeros(&self.input_dims);
        for b in 0..n {
            for ch in 0..c {
                let g = grad_out.as_slice()[b * c + ch] / plane as f32;
                let base = (b * c + ch) * plane;
                for v in &mut dx.as_mut_slice()[base..base + plane] {
                    *v = g;
                }
            }
        }
        dx
    }

    fn visit_params(&mut self, _visitor: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> String {
        "global_avg_pool".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flight_tensor::{numerical_gradient, uniform, TensorRng};

    #[test]
    fn maxpool_selects_window_maxima() {
        let mut pool = MaxPool2d::new(2);
        #[rustfmt::skip]
        let x = Tensor::from_vec(vec![
            1.0, 5.0,  2.0, 0.0,
            3.0, 4.0,  1.0, 8.0,
            0.0, 0.0,  6.0, 2.0,
            9.0, 1.0,  3.0, 3.0,
        ], &[1, 1, 4, 4]);
        let y = pool.forward(&x, false);
        assert_eq!(y.as_slice(), &[5.0, 8.0, 9.0, 6.0]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let mut pool = MaxPool2d::new(2);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        pool.forward(&x, true);
        let dx = pool.backward(&Tensor::from_vec(vec![7.0], &[1, 1, 1, 1]));
        assert_eq!(dx.as_slice(), &[0.0, 0.0, 0.0, 7.0]);
    }

    #[test]
    fn maxpool_backward_matches_numerical() {
        let mut rng = TensorRng::seed(12);
        let x = uniform(&mut rng, &[2, 2, 4, 4], -1.0, 1.0);
        let mask = uniform(&mut rng, &[2, 2, 2, 2], -1.0, 1.0);
        let mut pool = MaxPool2d::new(2);
        pool.forward(&x, true);
        let dx = pool.backward(&mask);
        let ndx = numerical_gradient(&x, 1e-4, |t| {
            let mut p = MaxPool2d::new(2);
            (&p.forward(t, false) * &mask).sum()
        });
        assert!(dx.allclose(&ndx, 1e-1));
    }

    #[test]
    fn gap_averages_planes() {
        let mut gap = GlobalAvgPool::new();
        let x = Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0], &[1, 1, 2, 2]);
        let y = gap.forward(&x, false);
        assert_eq!(y.as_slice(), &[4.0]);
    }

    #[test]
    fn gap_backward_spreads_uniformly() {
        let mut gap = GlobalAvgPool::new();
        gap.forward(&Tensor::zeros(&[1, 2, 2, 2]), true);
        let dx = gap.backward(&Tensor::from_vec(vec![4.0, 8.0], &[1, 2]));
        assert_eq!(dx.as_slice(), &[1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn maxpool_rejects_indivisible_input() {
        let mut pool = MaxPool2d::new(2);
        pool.forward(&Tensor::zeros(&[1, 1, 3, 4]), false);
    }
}
