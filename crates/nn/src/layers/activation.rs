//! Activation functions.

use flight_tensor::Tensor;

use crate::layer::{Layer, Param};

/// Leaky rectified linear unit, `y = x` for `x > 0` and `y = slope·x`
/// otherwise.
///
/// The paper's networks use LeakyReLU after every batch-normalized
/// convolution (§5.1, citing Maas et al.). Default slope is 0.01.
///
/// # Example
///
/// ```
/// use flight_nn::layers::LeakyRelu;
/// use flight_nn::Layer;
/// use flight_tensor::Tensor;
///
/// let mut act = LeakyRelu::default();
/// let y = act.forward(&Tensor::from_slice(&[-1.0, 2.0]), false);
/// assert_eq!(y.as_slice(), &[-0.01, 2.0]);
/// ```
#[derive(Debug, Clone)]
pub struct LeakyRelu {
    slope: f32,
    mask: Option<Tensor>,
}

impl LeakyRelu {
    /// Creates a LeakyReLU with a custom negative slope.
    ///
    /// # Panics
    ///
    /// Panics if `slope` is negative or not finite.
    pub fn with_slope(slope: f32) -> Self {
        assert!(slope.is_finite() && slope >= 0.0, "invalid slope {slope}");
        LeakyRelu { slope, mask: None }
    }

    /// The negative-side slope.
    pub fn slope(&self) -> f32 {
        self.slope
    }
}

impl Default for LeakyRelu {
    /// LeakyReLU with slope 0.01.
    fn default() -> Self {
        LeakyRelu::with_slope(0.01)
    }
}

impl Layer for LeakyRelu {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let slope = self.slope;
        if train {
            // Cache the local derivative, evaluated at the input.
            self.mask = Some(input.map(|x| if x > 0.0 { 1.0 } else { slope }));
        }
        input.map(|x| if x > 0.0 { x } else { slope * x })
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self
            .mask
            .take()
            .expect("LeakyRelu::backward called without a training forward pass");
        grad_out * &mask
    }

    fn visit_params(&mut self, _visitor: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> String {
        format!("leaky_relu({})", self.slope)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flight_tensor::{numerical_gradient, uniform, TensorRng};

    #[test]
    fn forward_values() {
        let mut act = LeakyRelu::with_slope(0.1);
        let y = act.forward(&Tensor::from_slice(&[-2.0, 0.0, 3.0]), false);
        assert_eq!(y.as_slice(), &[-0.2, 0.0, 3.0]);
    }

    #[test]
    fn backward_matches_numerical() {
        let mut rng = TensorRng::seed(3);
        // Keep inputs away from the kink at 0 for a clean finite difference.
        let x = uniform(&mut rng, &[8], 0.1, 1.0);
        let x = &x - &Tensor::full(&[8], 0.55); // mix of clearly +/- values
        let mask = uniform(&mut rng, &[8], -1.0, 1.0);

        let mut act = LeakyRelu::default();
        act.forward(&x, true);
        let dx = act.backward(&mask);

        let ndx = numerical_gradient(&x, 1e-3, |t| {
            let mut a = LeakyRelu::default();
            (&a.forward(t, false) * &mask).sum()
        });
        assert!(dx.allclose(&ndx, 1e-2));
    }

    #[test]
    #[should_panic(expected = "invalid slope")]
    fn rejects_negative_slope() {
        LeakyRelu::with_slope(-0.5);
    }
}
