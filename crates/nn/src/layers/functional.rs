//! Functional (stateless) forward/backward kernels.
//!
//! These free functions implement batched convolution and affine maps over
//! explicit weight tensors. The plain layers ([`Conv2d`](super::Conv2d),
//! [`Linear`](super::Linear)) call them with their own parameters; the
//! quantized layers in the `flightnn` crate call them with *quantized*
//! weights, which is how Algorithm 1's "quantize in forward, differentiate
//! with respect to the quantized weights" is realized without duplicating
//! any numerical code.

use flight_tensor::{col2im, im2col, Conv2dGeometry, Tensor};

/// Cached intermediates of a batched conv2d forward pass, consumed by
/// [`conv2d_backward`].
#[derive(Debug, Clone)]
pub struct Conv2dCache {
    /// Unfolded input patches, one `[patch_len, out_positions]` matrix per
    /// batch element.
    cols: Vec<Tensor>,
    geom: Conv2dGeometry,
    batch: usize,
}

impl Conv2dCache {
    /// The geometry the forward pass ran with.
    pub fn geometry(&self) -> &Conv2dGeometry {
        &self.geom
    }
}

/// Batched 2-D convolution: input `[n, c, h, w]`, weight `[f, c, k, k]`,
/// bias `[f]` → output `[n, f, oh, ow]`.
///
/// When `keep_cache` is true the unfolded patches are retained for a
/// matching [`conv2d_backward`] call.
///
/// # Panics
///
/// Panics on rank or shape mismatches between input, weight, and bias.
pub fn conv2d_forward(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    stride: usize,
    padding: usize,
    keep_cache: bool,
) -> (Tensor, Option<Conv2dCache>) {
    assert_eq!(input.shape().rank(), 4, "conv2d input must be [n, c, h, w]");
    assert_eq!(
        weight.shape().rank(),
        4,
        "conv2d weight must be [f, c, k, k]"
    );
    let (n, c, h, w) = (
        input.dims()[0],
        input.dims()[1],
        input.dims()[2],
        input.dims()[3],
    );
    let (f, wc, k, k2) = (
        weight.dims()[0],
        weight.dims()[1],
        weight.dims()[2],
        weight.dims()[3],
    );
    assert_eq!(k, k2, "conv2d kernels must be square");
    assert_eq!(wc, c, "weight channels {wc} != input channels {c}");
    assert_eq!(bias.len(), f, "bias length {} != filters {f}", bias.len());

    let geom = Conv2dGeometry::new(c, h, w, k, stride, padding);
    let wmat = weight.reshape(&[f, geom.patch_len()]);
    let mut out = Tensor::zeros(&[n, f, geom.out_h, geom.out_w]);
    let mut cols_cache: Vec<Tensor> = Vec::with_capacity(if keep_cache { n } else { 0 });

    for i in 0..n {
        let img = Tensor::from_vec(input.outer(i).to_vec(), &[c, h, w]);
        let cols = im2col(&img, &geom);
        let mut omat = wmat.matmul(&cols);
        for fi in 0..f {
            let b = bias.as_slice()[fi];
            for v in omat.outer_mut(fi) {
                *v += b;
            }
        }
        out.outer_mut(i).copy_from_slice(omat.as_slice());
        if keep_cache {
            cols_cache.push(cols);
        }
    }

    let cache = keep_cache.then_some(Conv2dCache {
        cols: cols_cache,
        geom,
        batch: n,
    });
    (out, cache)
}

/// Backward pass of [`conv2d_forward`].
///
/// Returns `(grad_input, grad_weight, grad_bias)` for `grad_out` shaped
/// `[n, f, oh, ow]`.
///
/// # Panics
///
/// Panics if `grad_out` does not match the cached forward geometry.
pub fn conv2d_backward(
    cache: &Conv2dCache,
    weight: &Tensor,
    grad_out: &Tensor,
) -> (Tensor, Tensor, Tensor) {
    let geom = &cache.geom;
    let n = cache.batch;
    let f = weight.dims()[0];
    assert_eq!(
        grad_out.dims(),
        &[n, f, geom.out_h, geom.out_w],
        "grad_out shape mismatch"
    );

    let wmat = weight.reshape(&[f, geom.patch_len()]);
    let wmat_t = wmat.transpose2();
    let mut grad_input = Tensor::zeros(&[n, geom.in_channels, geom.in_h, geom.in_w]);
    let mut grad_weight = Tensor::zeros(&[f, geom.patch_len()]);
    let mut grad_bias = Tensor::zeros(&[f]);

    for i in 0..n {
        let gmat = Tensor::from_vec(grad_out.outer(i).to_vec(), &[f, geom.out_positions()]);
        // dW += g · colsᵀ
        let cols_t = cache.cols[i].transpose2();
        grad_weight.axpy(1.0, &gmat.matmul(&cols_t));
        // db += row sums of g
        grad_bias.axpy(1.0, &gmat.sum_cols());
        // dX_i = col2im(Wᵀ · g)
        let dcols = wmat_t.matmul(&gmat);
        let dimg = col2im(&dcols, geom);
        grad_input.outer_mut(i).copy_from_slice(dimg.as_slice());
    }

    let grad_weight = grad_weight.reshape(weight.dims());
    (grad_input, grad_weight, grad_bias)
}

/// Cached input of a linear forward pass, consumed by [`linear_backward`].
#[derive(Debug, Clone)]
pub struct LinearCache {
    input: Tensor,
}

/// Batched affine map: input `[n, in]`, weight `[out, in]`, bias `[out]` →
/// `[n, out]`.
///
/// # Panics
///
/// Panics on rank or dimension mismatches.
pub fn linear_forward(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    keep_cache: bool,
) -> (Tensor, Option<LinearCache>) {
    assert_eq!(input.shape().rank(), 2, "linear input must be [n, in]");
    assert_eq!(weight.shape().rank(), 2, "linear weight must be [out, in]");
    assert_eq!(
        input.dims()[1],
        weight.dims()[1],
        "input features {} != weight in-features {}",
        input.dims()[1],
        weight.dims()[1]
    );
    assert_eq!(bias.len(), weight.dims()[0], "bias/out-features mismatch");

    let mut out = input.matmul(&weight.transpose2());
    out.add_row_vector(bias);
    let cache = keep_cache.then(|| LinearCache {
        input: input.clone(),
    });
    (out, cache)
}

/// Backward pass of [`linear_forward`]; returns `(grad_input, grad_weight,
/// grad_bias)`.
///
/// # Panics
///
/// Panics if `grad_out` does not match the cached batch.
pub fn linear_backward(
    cache: &LinearCache,
    weight: &Tensor,
    grad_out: &Tensor,
) -> (Tensor, Tensor, Tensor) {
    assert_eq!(
        grad_out.dims()[0],
        cache.input.dims()[0],
        "grad_out batch mismatch"
    );
    let grad_input = grad_out.matmul(weight);
    let grad_weight = grad_out.transpose2().matmul(&cache.input);
    let grad_bias = grad_out.sum_rows();
    (grad_input, grad_weight, grad_bias)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flight_tensor::{numerical_gradient, uniform, TensorRng};

    fn rel_err(a: &Tensor, b: &Tensor) -> f32 {
        flight_tensor::grad_check::gradient_relative_error(a, b)
    }

    #[test]
    fn conv2d_gradients_match_numerical() {
        let mut rng = TensorRng::seed(31);
        let input = uniform(&mut rng, &[2, 2, 5, 5], -1.0, 1.0);
        let weight = uniform(&mut rng, &[3, 2, 3, 3], -0.5, 0.5);
        let bias = uniform(&mut rng, &[3], -0.1, 0.1);

        // Scalar objective: sum of outputs weighted by a fixed random mask
        // (so every gradient path is exercised asymmetrically).
        let (out0, cache) = conv2d_forward(&input, &weight, &bias, 1, 1, true);
        let mask = uniform(&mut rng, out0.dims(), -1.0, 1.0);
        let loss = |o: &Tensor| (o * &mask).sum();

        let grad_out = mask.clone();
        let (dx, dw, db) = conv2d_backward(cache.as_ref().unwrap(), &weight, &grad_out);

        let ndx = numerical_gradient(&input, 1e-2, |x| {
            loss(&conv2d_forward(x, &weight, &bias, 1, 1, false).0)
        });
        let ndw = numerical_gradient(&weight, 1e-2, |w| {
            loss(&conv2d_forward(&input, w, &bias, 1, 1, false).0)
        });
        let ndb = numerical_gradient(&bias, 1e-2, |b| {
            loss(&conv2d_forward(&input, &weight, b, 1, 1, false).0)
        });

        assert!(rel_err(&dx, &ndx) < 1e-2, "dx err {}", rel_err(&dx, &ndx));
        assert!(rel_err(&dw, &ndw) < 1e-2, "dw err {}", rel_err(&dw, &ndw));
        assert!(rel_err(&db, &ndb) < 1e-2, "db err {}", rel_err(&db, &ndb));
    }

    #[test]
    fn conv2d_stride2_gradients_match_numerical() {
        let mut rng = TensorRng::seed(37);
        let input = uniform(&mut rng, &[1, 2, 6, 6], -1.0, 1.0);
        let weight = uniform(&mut rng, &[2, 2, 3, 3], -0.5, 0.5);
        let bias = Tensor::zeros(&[2]);

        let (out0, cache) = conv2d_forward(&input, &weight, &bias, 2, 1, true);
        let mask = uniform(&mut rng, out0.dims(), -1.0, 1.0);
        let (dx, dw, _) = conv2d_backward(cache.as_ref().unwrap(), &weight, &mask);

        let ndx = numerical_gradient(&input, 1e-2, |x| {
            (&conv2d_forward(x, &weight, &bias, 2, 1, false).0 * &mask).sum()
        });
        let ndw = numerical_gradient(&weight, 1e-2, |w| {
            (&conv2d_forward(&input, w, &bias, 2, 1, false).0 * &mask).sum()
        });
        assert!(rel_err(&dx, &ndx) < 1e-2);
        assert!(rel_err(&dw, &ndw) < 1e-2);
    }

    #[test]
    fn linear_gradients_match_numerical() {
        let mut rng = TensorRng::seed(41);
        let input = uniform(&mut rng, &[3, 5], -1.0, 1.0);
        let weight = uniform(&mut rng, &[4, 5], -0.5, 0.5);
        let bias = uniform(&mut rng, &[4], -0.1, 0.1);

        let (out0, cache) = linear_forward(&input, &weight, &bias, true);
        let mask = uniform(&mut rng, out0.dims(), -1.0, 1.0);
        let (dx, dw, db) = linear_backward(cache.as_ref().unwrap(), &weight, &mask);

        let ndx = numerical_gradient(&input, 1e-2, |x| {
            (&linear_forward(x, &weight, &bias, false).0 * &mask).sum()
        });
        let ndw = numerical_gradient(&weight, 1e-2, |w| {
            (&linear_forward(&input, w, &bias, false).0 * &mask).sum()
        });
        let ndb = numerical_gradient(&bias, 1e-2, |b| {
            (&linear_forward(&input, &weight, b, false).0 * &mask).sum()
        });
        assert!(rel_err(&dx, &ndx) < 1e-2);
        assert!(rel_err(&dw, &ndw) < 1e-2);
        assert!(rel_err(&db, &ndb) < 1e-2);
    }

    #[test]
    fn conv2d_bias_broadcasts_per_filter() {
        let input = Tensor::zeros(&[1, 1, 3, 3]);
        let weight = Tensor::zeros(&[2, 1, 3, 3]);
        let bias = Tensor::from_slice(&[1.0, -2.0]);
        let (out, _) = conv2d_forward(&input, &weight, &bias, 1, 1, false);
        assert_eq!(out.at(&[0, 0, 1, 1]), 1.0);
        assert_eq!(out.at(&[0, 1, 2, 2]), -2.0);
    }

    #[test]
    #[should_panic(expected = "weight channels")]
    fn conv2d_rejects_channel_mismatch() {
        let input = Tensor::zeros(&[1, 3, 4, 4]);
        let weight = Tensor::zeros(&[2, 2, 3, 3]);
        let bias = Tensor::zeros(&[2]);
        let _ = conv2d_forward(&input, &weight, &bias, 1, 1, false);
    }
}
