//! The plain (full-precision) 2-D convolution layer.

use flight_tensor::{kaiming_uniform, Tensor, TensorRng};

use crate::layer::{Layer, Param};
use crate::layers::functional::{conv2d_backward, conv2d_forward, Conv2dCache};

/// A batched 2-D convolution with square kernels and learned bias.
///
/// Weight layout is `[filters, in_channels, kernel, kernel]` — axis 0 is
/// the *filter* axis, which is the granularity at which FLightNN later
/// assigns per-filter shift counts.
///
/// # Example
///
/// ```
/// use flight_nn::layers::Conv2d;
/// use flight_nn::Layer;
/// use flight_tensor::{Tensor, TensorRng};
///
/// let mut rng = TensorRng::seed(0);
/// let mut conv = Conv2d::new(&mut rng, 3, 8, 3, 1, 1);
/// let y = conv.forward(&Tensor::zeros(&[2, 3, 16, 16]), false);
/// assert_eq!(y.dims(), &[2, 8, 16, 16]);
/// ```
#[derive(Debug, Clone)]
pub struct Conv2d {
    weight: Param,
    bias: Param,
    stride: usize,
    padding: usize,
    cache: Option<Conv2dCache>,
}

impl Conv2d {
    /// Creates a conv layer with Kaiming-uniform weights and zero bias.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `stride == 0`.
    pub fn new(
        rng: &mut TensorRng,
        in_channels: usize,
        filters: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        assert!(
            in_channels > 0 && filters > 0 && kernel > 0,
            "zero-sized conv"
        );
        assert!(stride > 0, "stride must be positive");
        let fan_in = in_channels * kernel * kernel;
        let weight = kaiming_uniform(rng, &[filters, in_channels, kernel, kernel], fan_in);
        Conv2d {
            weight: Param::new(weight),
            bias: Param::new(Tensor::zeros(&[filters])),
            stride,
            padding,
            cache: None,
        }
    }

    /// Number of output filters.
    pub fn filters(&self) -> usize {
        self.weight.value.dims()[0]
    }

    /// The weight parameter.
    pub fn weight(&self) -> &Param {
        &self.weight
    }

    /// Mutable access to the weight parameter.
    pub fn weight_mut(&mut self) -> &mut Param {
        &mut self.weight
    }

    /// The bias parameter.
    pub fn bias(&self) -> &Param {
        &self.bias
    }

    /// Stride of the convolution.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Zero padding of the convolution.
    pub fn padding(&self) -> usize {
        self.padding
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let (out, cache) = conv2d_forward(
            input,
            &self.weight.value,
            &self.bias.value,
            self.stride,
            self.padding,
            train,
        );
        self.cache = cache;
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self
            .cache
            .take()
            .expect("Conv2d::backward called without a training forward pass");
        let (dx, dw, db) = conv2d_backward(&cache, &self.weight.value, grad_out);
        self.weight.grad.axpy(1.0, &dw);
        self.bias.grad.axpy(1.0, &db);
        dx
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        visitor(&mut self.weight);
        visitor(&mut self.bias);
    }

    fn name(&self) -> String {
        let d = self.weight.value.dims();
        format!(
            "conv2d({}→{}, {}x{}, s{} p{})",
            d[1], d[0], d[2], d[3], self.stride, self.padding
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shape_and_param_count() {
        let mut rng = TensorRng::seed(1);
        let mut conv = Conv2d::new(&mut rng, 3, 4, 3, 1, 1);
        assert_eq!(conv.param_count(), 4 * 3 * 9 + 4);
        let y = conv.forward(&Tensor::zeros(&[1, 3, 8, 8]), false);
        assert_eq!(y.dims(), &[1, 4, 8, 8]);
    }

    #[test]
    #[should_panic(expected = "without a training forward")]
    fn backward_requires_training_forward() {
        let mut rng = TensorRng::seed(1);
        let mut conv = Conv2d::new(&mut rng, 1, 1, 3, 1, 1);
        let _ = conv.forward(&Tensor::zeros(&[1, 1, 4, 4]), false);
        let _ = conv.backward(&Tensor::zeros(&[1, 1, 4, 4]));
    }

    #[test]
    fn gradients_accumulate_across_backward_calls() {
        let mut rng = TensorRng::seed(2);
        let mut conv = Conv2d::new(&mut rng, 1, 1, 3, 1, 1);
        let x = flight_tensor::uniform(&mut rng, &[1, 1, 4, 4], -1.0, 1.0);
        let g = Tensor::ones(&[1, 1, 4, 4]);
        conv.forward(&x, true);
        conv.backward(&g);
        let first = conv.weight().grad.clone();
        conv.forward(&x, true);
        conv.backward(&g);
        assert!(conv.weight().grad.allclose(&first.scale(2.0), 1e-5));
        conv.zero_grad();
        assert_eq!(conv.weight().grad.sum(), 0.0);
    }

    #[test]
    fn name_mentions_geometry() {
        let mut rng = TensorRng::seed(3);
        let conv = Conv2d::new(&mut rng, 3, 64, 3, 2, 1);
        assert_eq!(conv.name(), "conv2d(3→64, 3x3, s2 p1)");
    }
}
