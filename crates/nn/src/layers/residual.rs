//! ResNet basic block with skip connection.

use flight_tensor::{Tensor, TensorRng};

use crate::layer::{Layer, Param};
use crate::layers::{BatchNorm2d, Conv2d, LeakyRelu, Sequential};

/// A factory producing a convolution layer; used so quantized variants of
/// the residual block can substitute their own conv implementation.
///
/// Arguments: `(rng, in_channels, filters, kernel, stride, padding)`.
pub type ConvFactory<'a> =
    &'a mut dyn FnMut(&mut TensorRng, usize, usize, usize, usize, usize) -> Box<dyn Layer>;

/// The ResNet basic block used by the paper's networks 2, 6, 7 and 8:
/// `conv(3x3) → BN → LeakyReLU → conv(3x3) → BN`, summed with an identity
/// (or 1×1-conv downsampling) shortcut, followed by a LeakyReLU.
///
/// # Example
///
/// ```
/// use flight_nn::layers::ResidualBlock;
/// use flight_nn::Layer;
/// use flight_tensor::{Tensor, TensorRng};
///
/// let mut rng = TensorRng::seed(0);
/// let mut block = ResidualBlock::basic(&mut rng, 8, 16, 2);
/// let y = block.forward(&Tensor::zeros(&[1, 8, 8, 8]), false);
/// assert_eq!(y.dims(), &[1, 16, 4, 4]);
/// ```
pub struct ResidualBlock {
    main: Sequential,
    shortcut: Option<Sequential>,
    act: LeakyRelu,
}

impl ResidualBlock {
    /// Builds a basic block with plain full-precision convolutions.
    ///
    /// A projection shortcut (1×1 conv + BN) is inserted automatically
    /// when `stride != 1` or the channel count changes.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn basic(rng: &mut TensorRng, in_channels: usize, filters: usize, stride: usize) -> Self {
        let mut factory =
            |rng: &mut TensorRng,
             cin: usize,
             f: usize,
             k: usize,
             s: usize,
             p: usize|
             -> Box<dyn Layer> { Box::new(Conv2d::new(rng, cin, f, k, s, p)) };
        Self::basic_with(rng, in_channels, filters, stride, &mut factory)
    }

    /// Builds a basic block whose convolutions come from `factory` —
    /// the hook that lets `flightnn` build quantized residual blocks.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn basic_with(
        rng: &mut TensorRng,
        in_channels: usize,
        filters: usize,
        stride: usize,
        factory: ConvFactory<'_>,
    ) -> Self {
        assert!(
            in_channels > 0 && filters > 0 && stride > 0,
            "zero-sized block"
        );
        let mut main = Sequential::new();
        main.push_boxed(factory(rng, in_channels, filters, 3, stride, 1));
        main.push(BatchNorm2d::new(filters));
        main.push(LeakyRelu::default());
        main.push_boxed(factory(rng, filters, filters, 3, 1, 1));
        main.push(BatchNorm2d::new(filters));

        let shortcut = if stride != 1 || in_channels != filters {
            let mut sc = Sequential::new();
            sc.push_boxed(factory(rng, in_channels, filters, 1, stride, 0));
            sc.push(BatchNorm2d::new(filters));
            Some(sc)
        } else {
            None
        };

        ResidualBlock {
            main,
            shortcut,
            act: LeakyRelu::default(),
        }
    }

    /// Whether this block downsamples through a projection shortcut.
    pub fn has_projection(&self) -> bool {
        self.shortcut.is_some()
    }
}

impl std::fmt::Debug for ResidualBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ResidualBlock(projection: {})", self.shortcut.is_some())
    }
}

impl Layer for ResidualBlock {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let main_out = self.main.forward(input, train);
        let short_out = match &mut self.shortcut {
            Some(sc) => sc.forward(input, train),
            None => input.clone(),
        };
        let sum = &main_out + &short_out;
        self.act.forward(&sum, train)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let g = self.act.backward(grad_out);
        let g_main = self.main.backward(&g);
        let g_short = match &mut self.shortcut {
            Some(sc) => sc.backward(&g),
            None => g,
        };
        &g_main + &g_short
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        self.main.visit_params(visitor);
        if let Some(sc) = &mut self.shortcut {
            sc.visit_params(visitor);
        }
    }

    fn visit_state(&mut self, visitor: &mut dyn FnMut(&mut flight_tensor::Tensor)) {
        self.main.visit_state(visitor);
        if let Some(sc) = &mut self.shortcut {
            sc.visit_state(visitor);
        }
    }

    fn name(&self) -> String {
        format!("residual_block(projection: {})", self.shortcut.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flight_tensor::uniform;

    #[test]
    fn identity_block_preserves_shape() {
        let mut rng = TensorRng::seed(1);
        let mut block = ResidualBlock::basic(&mut rng, 8, 8, 1);
        assert!(!block.has_projection());
        let y = block.forward(&Tensor::zeros(&[2, 8, 4, 4]), false);
        assert_eq!(y.dims(), &[2, 8, 4, 4]);
    }

    #[test]
    fn projection_block_downsamples() {
        let mut rng = TensorRng::seed(2);
        let mut block = ResidualBlock::basic(&mut rng, 4, 8, 2);
        assert!(block.has_projection());
        let y = block.forward(&Tensor::zeros(&[1, 4, 8, 8]), false);
        assert_eq!(y.dims(), &[1, 8, 4, 4]);
    }

    #[test]
    fn backward_produces_input_shaped_gradient() {
        let mut rng = TensorRng::seed(3);
        let mut block = ResidualBlock::basic(&mut rng, 4, 8, 2);
        let x = uniform(&mut rng, &[2, 4, 8, 8], -1.0, 1.0);
        let y = block.forward(&x, true);
        let dx = block.backward(&Tensor::ones(y.dims()));
        assert_eq!(dx.dims(), x.dims());
        assert!(dx.abs_max() > 0.0, "gradient should be nonzero");
    }

    #[test]
    fn skip_path_gradient_flows_through_identity() {
        // With main-path weights zeroed, the block output is
        // LeakyReLU(shortcut) and the gradient must still reach the input.
        let mut rng = TensorRng::seed(4);
        let mut block = ResidualBlock::basic(&mut rng, 4, 4, 1);
        block.visit_params(&mut |p| {
            // Zero conv weights/biases but keep batchnorm gamma=1.
            if p.value.shape().rank() == 4 {
                p.value = Tensor::zeros(p.value.dims());
            }
        });
        let x = uniform(&mut rng, &[1, 4, 4, 4], 0.5, 1.0);
        let y = block.forward(&x, true);
        // Positive input + zero main path means output == input.
        assert!(y.allclose(&x, 1e-4));
        let dx = block.backward(&Tensor::ones(y.dims()));
        // Identity path contributes exactly 1 to every gradient entry.
        assert!(dx.as_slice().iter().all(|&g| g >= 0.99));
    }
}
