//! The [`Layer`] trait and trainable [`Param`] storage.

use std::sync::atomic::{AtomicU64, Ordering};

use flight_tensor::Tensor;

static NEXT_PARAM_ID: AtomicU64 = AtomicU64::new(1);

/// A trainable parameter: a value tensor plus its gradient accumulator.
///
/// Every `Param` carries a process-unique id so stateful optimizers (Adam
/// moments) can key their per-parameter state even as layers are moved
/// around.
///
/// # Example
///
/// ```
/// use flight_nn::Param;
/// use flight_tensor::Tensor;
///
/// let mut p = Param::new(Tensor::zeros(&[3]));
/// p.grad.as_mut_slice()[0] = 1.0;
/// p.zero_grad();
/// assert_eq!(p.grad.as_slice(), &[0.0, 0.0, 0.0]);
/// ```
#[derive(Debug, Clone)]
pub struct Param {
    /// Current parameter value.
    pub value: Tensor,
    /// Accumulated gradient of the training loss with respect to `value`.
    pub grad: Tensor,
    id: u64,
}

impl Param {
    /// Wraps a value tensor in a parameter with a zeroed gradient.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.dims());
        Param {
            value,
            grad,
            id: NEXT_PARAM_ID.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// The process-unique id of this parameter.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Resets the gradient accumulator to zero.
    pub fn zero_grad(&mut self) {
        for g in self.grad.as_mut_slice() {
            *g = 0.0;
        }
    }
}

/// A differentiable network building block.
///
/// Layers cache whatever they need during [`forward`](Layer::forward) and
/// consume it in [`backward`](Layer::backward); a backward call must be
/// preceded by a forward call on the same input batch. Parameter gradients
/// are *accumulated* into [`Param::grad`]; callers zero them between
/// optimizer steps via [`Layer::zero_grad`].
pub trait Layer: Send {
    /// Computes the layer output for a batch.
    ///
    /// `train` selects training-time behaviour (batch statistics in
    /// BatchNorm, caching for backward). Inference-only calls should pass
    /// `false`.
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor;

    /// Propagates `grad_out` (gradient of the loss with respect to this
    /// layer's output) back to the input, accumulating parameter
    /// gradients along the way.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called without a preceding training
    /// forward pass.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Visits every trainable parameter of this layer (and sub-layers).
    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param));

    /// Visits every *non-trainable* state tensor (e.g. batch-norm running
    /// statistics). Optimizers must not touch these, but checkpoints must
    /// include them. Default: no state.
    fn visit_state(&mut self, _visitor: &mut dyn FnMut(&mut Tensor)) {}

    /// A short human-readable layer name for summaries.
    fn name(&self) -> String;

    /// Zeroes all parameter gradients.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Total number of trainable scalars in the layer.
    fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.value.len());
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_ids_are_unique() {
        let a = Param::new(Tensor::zeros(&[1]));
        let b = Param::new(Tensor::zeros(&[1]));
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::new(Tensor::zeros(&[4]));
        p.grad = Tensor::ones(&[4]);
        p.zero_grad();
        assert_eq!(p.grad.sum(), 0.0);
    }

    #[test]
    fn clone_preserves_id() {
        // Adam state must follow a cloned network (e.g. best-model
        // snapshots), so a clone keeps its parameter identity.
        let p = Param::new(Tensor::zeros(&[1]));
        assert_eq!(p.id(), p.clone().id());
    }
}
