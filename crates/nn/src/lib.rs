//! Layer-based neural-network training framework for the FLightNN
//! reproduction.
//!
//! The paper trains its models with a modified backpropagation algorithm
//! (Algorithm 1): quantize weights in the forward phase, compute gradients
//! with respect to the *quantized* weights, and apply them to the
//! full-precision shadow weights. That workflow needs a framework where
//! layers own their parameters and expose explicit `forward`/`backward`
//! passes that custom quantized layers can override — which is exactly the
//! shape of this crate.
//!
//! * [`Layer`] — the forward/backward/parameter-visiting trait.
//! * [`layers`] — Conv2d, BatchNorm2d, LeakyReLU, MaxPool2d, Linear,
//!   Flatten, and the ResNet basic block used by the paper's network
//!   configurations (Table 1).
//! * [`loss`] — softmax cross-entropy (the paper's `L_CE`) and accuracy.
//! * [`optim`] — SGD and Adam (the paper trains with Adam, §5.1).
//! * [`train`] — minibatch loop with per-epoch metrics.
//!
//! # Example
//!
//! ```
//! use flight_nn::layers::{LeakyRelu, Linear, Sequential};
//! use flight_nn::loss::softmax_cross_entropy;
//! use flight_nn::optim::{Adam, Optimizer};
//! use flight_nn::Layer;
//! use flight_tensor::{Tensor, TensorRng};
//!
//! let mut rng = TensorRng::seed(0);
//! let mut net = Sequential::new();
//! net.push(Linear::new(&mut rng, 4, 8));
//! net.push(LeakyRelu::default());
//! net.push(Linear::new(&mut rng, 8, 2));
//!
//! let x = Tensor::ones(&[1, 4]);
//! let logits = net.forward(&x, true);
//! let (loss, grad) = softmax_cross_entropy(&logits, &[1]);
//! net.backward(&grad);
//! let mut opt = Adam::new(1e-3);
//! opt.step(&mut net);
//! assert!(loss.is_finite());
//! ```

pub mod layer;
pub mod layers;
pub mod loss;
pub mod optim;
pub mod train;

pub use layer::{Layer, Param};
pub use layers::Sequential;
pub use train::{evaluate, train_epoch, Batch, EpochStats};
