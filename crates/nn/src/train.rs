//! Minibatch training and evaluation loops.

use flight_tensor::Tensor;

use crate::layer::Layer;
use crate::loss::{softmax_cross_entropy, top_k_accuracy};
use crate::optim::Optimizer;

/// One minibatch: images `[n, c, h, w]` (or features `[n, d]`) plus `n`
/// class labels.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Input tensor with the batch on axis 0.
    pub input: Tensor,
    /// Class index per batch element.
    pub labels: Vec<usize>,
}

impl Batch {
    /// Creates a batch.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len()` does not match axis 0 of `input`.
    pub fn new(input: Tensor, labels: Vec<usize>) -> Self {
        assert!(input.shape().rank() >= 1, "batch input needs a batch axis");
        assert_eq!(
            input.dims()[0],
            labels.len(),
            "batch size {} != label count {}",
            input.dims()[0],
            labels.len()
        );
        Batch { input, labels }
    }

    /// Number of samples in the batch.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` when the batch has no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// Aggregated metrics of one pass over a set of batches.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EpochStats {
    /// Mean cross-entropy loss over all samples.
    pub loss: f32,
    /// Top-1 accuracy in `[0, 1]`.
    pub accuracy: f32,
    /// Number of samples seen.
    pub samples: usize,
    /// Wall-clock seconds the pass took.
    pub wall_secs: f32,
    /// Training/evaluation throughput (`samples / wall_secs`; 0 when the
    /// pass was too fast to time).
    pub samples_per_sec: f32,
}

impl EpochStats {
    /// Builds the aggregate from per-pass totals plus the measured
    /// wall-clock time.
    pub fn from_totals(total_loss: f64, correct: f64, samples: usize, wall_secs: f32) -> Self {
        if samples == 0 {
            return EpochStats::default();
        }
        EpochStats {
            loss: (total_loss / samples as f64) as f32,
            accuracy: (correct / samples as f64) as f32,
            samples,
            wall_secs,
            samples_per_sec: if wall_secs > 0.0 {
                samples as f32 / wall_secs
            } else {
                0.0
            },
        }
    }
}

impl std::fmt::Display for EpochStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "loss {:.4}, accuracy {:.2}% over {} samples",
            self.loss,
            self.accuracy * 100.0,
            self.samples
        )?;
        if self.wall_secs > 0.0 {
            write!(
                f,
                " in {:.2}s ({:.1} samples/s)",
                self.wall_secs, self.samples_per_sec
            )?;
        }
        Ok(())
    }
}

/// Runs one optimization epoch: for every batch, zero gradients, forward,
/// cross-entropy backward, optimizer step.
///
/// This is the plain-DNN loop; the FLightNN trainer in the `flightnn`
/// crate layers regularization and threshold updates on top of the same
/// structure (Algorithm 1).
///
/// # Panics
///
/// Panics if any batch is malformed (see [`Batch::new`]).
pub fn train_epoch(net: &mut dyn Layer, batches: &[Batch], opt: &mut dyn Optimizer) -> EpochStats {
    let start = std::time::Instant::now();
    let mut total_loss = 0.0f64;
    let mut correct = 0.0f64;
    let mut samples = 0usize;
    for batch in batches {
        if batch.is_empty() {
            continue;
        }
        net.zero_grad();
        let logits = net.forward(&batch.input, true);
        let (loss, grad) = softmax_cross_entropy(&logits, &batch.labels);
        net.backward(&grad);
        opt.step(net);

        let n = batch.len();
        total_loss += loss as f64 * n as f64;
        correct += top_k_accuracy(&logits, &batch.labels, 1) as f64 * n as f64;
        samples += n;
    }
    EpochStats::from_totals(total_loss, correct, samples, start.elapsed().as_secs_f32())
}

/// Evaluates `net` on `batches` without touching parameters, reporting
/// top-`k` accuracy (`k = 1` for the paper's CIFAR/SVHN tables, `k = 5`
/// for ImageNet).
pub fn evaluate(net: &mut dyn Layer, batches: &[Batch], k: usize) -> EpochStats {
    let start = std::time::Instant::now();
    let mut total_loss = 0.0f64;
    let mut correct = 0.0f64;
    let mut samples = 0usize;
    for batch in batches {
        if batch.is_empty() {
            continue;
        }
        let logits = net.forward(&batch.input, false);
        let (loss, _) = softmax_cross_entropy(&logits, &batch.labels);
        let n = batch.len();
        total_loss += loss as f64 * n as f64;
        correct += top_k_accuracy(&logits, &batch.labels, k) as f64 * n as f64;
        samples += n;
    }
    EpochStats::from_totals(total_loss, correct, samples, start.elapsed().as_secs_f32())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{LeakyRelu, Linear, Sequential};
    use crate::optim::Adam;
    use flight_tensor::{uniform, TensorRng};

    fn separable_batches(rng: &mut TensorRng, n_batches: usize) -> Vec<Batch> {
        (0..n_batches)
            .map(|_| {
                let x = uniform(rng, &[16, 4], -1.0, 1.0);
                let labels = (0..16)
                    .map(|i| if x.outer(i)[0] > 0.0 { 1usize } else { 0 })
                    .collect();
                Batch::new(x, labels)
            })
            .collect()
    }

    #[test]
    fn training_improves_accuracy() {
        let mut rng = TensorRng::seed(3);
        let train = separable_batches(&mut rng, 6);
        let test = separable_batches(&mut rng, 2);

        let mut net = Sequential::new();
        net.push(Linear::new(&mut rng, 4, 16));
        net.push(LeakyRelu::default());
        net.push(Linear::new(&mut rng, 16, 2));

        let before = evaluate(&mut net, &test, 1);
        let mut opt = Adam::new(5e-3);
        for _ in 0..30 {
            train_epoch(&mut net, &train, &mut opt);
        }
        let after = evaluate(&mut net, &test, 1);
        assert!(
            after.accuracy > 0.95,
            "accuracy only reached {} (before {})",
            after.accuracy,
            before.accuracy
        );
        assert!(after.loss < before.loss);
    }

    #[test]
    fn empty_batch_set_reports_zero() {
        let mut rng = TensorRng::seed(4);
        let mut net = Sequential::new();
        net.push(Linear::new(&mut rng, 2, 2));
        let stats = evaluate(&mut net, &[], 1);
        assert_eq!(stats.samples, 0);
        assert_eq!(stats.loss, 0.0);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn batch_rejects_label_mismatch() {
        Batch::new(Tensor::zeros(&[2, 3]), vec![0]);
    }

    #[test]
    fn stats_display_is_informative() {
        let s = EpochStats {
            loss: 0.5,
            accuracy: 0.75,
            samples: 100,
            wall_secs: 2.0,
            samples_per_sec: 50.0,
        };
        let text = s.to_string();
        assert!(text.contains("0.5"));
        assert!(text.contains("75.00%"));
        assert!(text.contains("2.00s"));
        assert!(text.contains("50.0 samples/s"));
    }

    #[test]
    fn from_totals_derives_throughput() {
        let s = EpochStats::from_totals(20.0, 15.0, 20, 0.5);
        assert!((s.loss - 1.0).abs() < 1e-6);
        assert!((s.accuracy - 0.75).abs() < 1e-6);
        assert!((s.samples_per_sec - 40.0).abs() < 1e-3);
        // Untimed passes report zero throughput instead of infinity.
        assert_eq!(
            EpochStats::from_totals(1.0, 1.0, 4, 0.0).samples_per_sec,
            0.0
        );
        assert_eq!(
            EpochStats::from_totals(0.0, 0.0, 0, 1.0),
            EpochStats::default()
        );
    }

    #[test]
    fn training_pass_is_timed() {
        let mut rng = TensorRng::seed(9);
        let train = separable_batches(&mut rng, 2);
        let mut net = Sequential::new();
        net.push(Linear::new(&mut rng, 4, 2));
        let mut opt = Adam::new(1e-3);
        let stats = train_epoch(&mut net, &train, &mut opt);
        assert!(stats.wall_secs > 0.0, "epoch wall-clock must be measured");
        assert!(stats.samples_per_sec > 0.0);
    }
}
