//! Minibatch training and evaluation loops.

use flight_tensor::Tensor;

use crate::layer::Layer;
use crate::loss::{softmax_cross_entropy, top_k_accuracy};
use crate::optim::Optimizer;

/// One minibatch: images `[n, c, h, w]` (or features `[n, d]`) plus `n`
/// class labels.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Input tensor with the batch on axis 0.
    pub input: Tensor,
    /// Class index per batch element.
    pub labels: Vec<usize>,
}

impl Batch {
    /// Creates a batch.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len()` does not match axis 0 of `input`.
    pub fn new(input: Tensor, labels: Vec<usize>) -> Self {
        assert!(input.shape().rank() >= 1, "batch input needs a batch axis");
        assert_eq!(
            input.dims()[0],
            labels.len(),
            "batch size {} != label count {}",
            input.dims()[0],
            labels.len()
        );
        Batch { input, labels }
    }

    /// Number of samples in the batch.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` when the batch has no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// Aggregated metrics of one pass over a set of batches.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EpochStats {
    /// Mean cross-entropy loss over all samples.
    pub loss: f32,
    /// Top-1 accuracy in `[0, 1]`.
    pub accuracy: f32,
    /// Number of samples seen.
    pub samples: usize,
}

impl std::fmt::Display for EpochStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "loss {:.4}, accuracy {:.2}% over {} samples",
            self.loss,
            self.accuracy * 100.0,
            self.samples
        )
    }
}

/// Runs one optimization epoch: for every batch, zero gradients, forward,
/// cross-entropy backward, optimizer step.
///
/// This is the plain-DNN loop; the FLightNN trainer in the `flightnn`
/// crate layers regularization and threshold updates on top of the same
/// structure (Algorithm 1).
///
/// # Panics
///
/// Panics if any batch is malformed (see [`Batch::new`]).
pub fn train_epoch(
    net: &mut dyn Layer,
    batches: &[Batch],
    opt: &mut dyn Optimizer,
) -> EpochStats {
    let mut total_loss = 0.0f64;
    let mut correct = 0.0f64;
    let mut samples = 0usize;
    for batch in batches {
        if batch.is_empty() {
            continue;
        }
        net.zero_grad();
        let logits = net.forward(&batch.input, true);
        let (loss, grad) = softmax_cross_entropy(&logits, &batch.labels);
        net.backward(&grad);
        opt.step(net);

        let n = batch.len();
        total_loss += loss as f64 * n as f64;
        correct += top_k_accuracy(&logits, &batch.labels, 1) as f64 * n as f64;
        samples += n;
    }
    finalize(total_loss, correct, samples)
}

/// Evaluates `net` on `batches` without touching parameters, reporting
/// top-`k` accuracy (`k = 1` for the paper's CIFAR/SVHN tables, `k = 5`
/// for ImageNet).
pub fn evaluate(net: &mut dyn Layer, batches: &[Batch], k: usize) -> EpochStats {
    let mut total_loss = 0.0f64;
    let mut correct = 0.0f64;
    let mut samples = 0usize;
    for batch in batches {
        if batch.is_empty() {
            continue;
        }
        let logits = net.forward(&batch.input, false);
        let (loss, _) = softmax_cross_entropy(&logits, &batch.labels);
        let n = batch.len();
        total_loss += loss as f64 * n as f64;
        correct += top_k_accuracy(&logits, &batch.labels, k) as f64 * n as f64;
        samples += n;
    }
    finalize(total_loss, correct, samples)
}

fn finalize(total_loss: f64, correct: f64, samples: usize) -> EpochStats {
    if samples == 0 {
        return EpochStats::default();
    }
    EpochStats {
        loss: (total_loss / samples as f64) as f32,
        accuracy: (correct / samples as f64) as f32,
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{LeakyRelu, Linear, Sequential};
    use crate::optim::Adam;
    use flight_tensor::{uniform, TensorRng};

    fn separable_batches(rng: &mut TensorRng, n_batches: usize) -> Vec<Batch> {
        (0..n_batches)
            .map(|_| {
                let x = uniform(rng, &[16, 4], -1.0, 1.0);
                let labels = (0..16)
                    .map(|i| if x.outer(i)[0] > 0.0 { 1usize } else { 0 })
                    .collect();
                Batch::new(x, labels)
            })
            .collect()
    }

    #[test]
    fn training_improves_accuracy() {
        let mut rng = TensorRng::seed(3);
        let train = separable_batches(&mut rng, 6);
        let test = separable_batches(&mut rng, 2);

        let mut net = Sequential::new();
        net.push(Linear::new(&mut rng, 4, 16));
        net.push(LeakyRelu::default());
        net.push(Linear::new(&mut rng, 16, 2));

        let before = evaluate(&mut net, &test, 1);
        let mut opt = Adam::new(5e-3);
        for _ in 0..30 {
            train_epoch(&mut net, &train, &mut opt);
        }
        let after = evaluate(&mut net, &test, 1);
        assert!(
            after.accuracy > 0.95,
            "accuracy only reached {} (before {})",
            after.accuracy,
            before.accuracy
        );
        assert!(after.loss < before.loss);
    }

    #[test]
    fn empty_batch_set_reports_zero() {
        let mut rng = TensorRng::seed(4);
        let mut net = Sequential::new();
        net.push(Linear::new(&mut rng, 2, 2));
        let stats = evaluate(&mut net, &[], 1);
        assert_eq!(stats.samples, 0);
        assert_eq!(stats.loss, 0.0);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn batch_rejects_label_mismatch() {
        Batch::new(Tensor::zeros(&[2, 3]), vec![0]);
    }

    #[test]
    fn stats_display_is_informative() {
        let s = EpochStats {
            loss: 0.5,
            accuracy: 0.75,
            samples: 100,
        };
        let text = s.to_string();
        assert!(text.contains("0.5"));
        assert!(text.contains("75.00%"));
    }
}
