//! Parallel/sequential parity suite for the batched execution engine.
//!
//! The engine quantizes activations with one scale per image, so the
//! parallel path must be **bit-identical** to the sequential path — same
//! logits, same [`OpCounts`] — for every batch size and every compiled
//! datapath (shift-add, fixed-point, float fallback), folded or not.
//! These tests use small hand-built untrained networks: parity is a
//! property of the execution engine, not of the weights, and untrained
//! nets keep the debug-mode test run fast.

use std::sync::Arc;

use flight_kernels::{CompileOptions, CompiledNet, ExecCtx, ExecutionPolicy, IntNetwork, OpCounts};
use flight_nn::layers::{BatchNorm2d, Flatten, GlobalAvgPool, LeakyRelu, MaxPool2d};
use flight_telemetry::{CollectingSink, EventKind, Telemetry};
use flight_tensor::{uniform, Tensor, TensorRng};
use flightnn::layers::{ActQuant, QuantConv2d, QuantLinear};
use flightnn::net::QuantResidualBlock;
use flightnn::{QuantNet, QuantScheme};
use proptest::prelude::*;

const IMG_DIMS: [usize; 3] = [3, 6, 6];

/// conv → BN → LeakyReLU → maxpool → requant → conv → BN → LeakyReLU →
/// GAP → flatten → linear; covers every non-residual stage kind.
fn conv_net(scheme: &QuantScheme, seed: u64) -> QuantNet {
    let mut rng = TensorRng::seed(seed);
    let mut net = QuantNet::new();
    net.push_conv(QuantConv2d::new(&mut rng, scheme, 3, 4, 3, 1, 1));
    net.push_plain(BatchNorm2d::new(4));
    net.push_plain(LeakyRelu::default());
    net.push_plain(MaxPool2d::new(2));
    net.push_plain(ActQuant::new(8));
    net.push_conv(QuantConv2d::new(&mut rng, scheme, 4, 6, 3, 1, 1));
    net.push_plain(BatchNorm2d::new(6));
    net.push_plain(LeakyRelu::default());
    net.push_plain(GlobalAvgPool::new());
    net.push_plain(Flatten::new());
    net.push_linear(QuantLinear::new(&mut rng, scheme, 6, 4));
    net
}

/// conv → residual block (custom joining slope) → GAP → flatten → linear.
fn residual_net(scheme: &QuantScheme, seed: u64) -> QuantNet {
    let mut rng = TensorRng::seed(seed);
    let mut net = QuantNet::new();
    net.push_conv(QuantConv2d::new(&mut rng, scheme, 3, 4, 3, 1, 1));
    let mut main = QuantNet::new();
    main.push_conv(QuantConv2d::new(&mut rng, scheme, 4, 4, 3, 1, 1));
    main.push_plain(BatchNorm2d::new(4));
    net.push_residual(QuantResidualBlock::from_parts_with_slope(main, None, 0.2));
    net.push_plain(GlobalAvgPool::new());
    net.push_plain(Flatten::new());
    net.push_linear(QuantLinear::new(&mut rng, scheme, 4, 4));
    net
}

fn input_batch(n: usize, seed: u64) -> Tensor {
    let mut rng = TensorRng::seed(seed);
    uniform(
        &mut rng,
        &[n, IMG_DIMS[0], IMG_DIMS[1], IMG_DIMS[2]],
        -1.0,
        1.0,
    )
}

/// Compiles once, then checks parallel vs sequential bit-exactness at
/// every batch size in `1..=max_batch`.
fn assert_parity(net: &mut QuantNet, fold: bool, label: &str) {
    let engine = IntNetwork::compile_with(net, CompileOptions::new().fold_batch_norm(fold))
        .expect("test network compiles");
    let seq = engine.clone().with_policy(ExecutionPolicy::Sequential);
    let par = engine.with_policy(ExecutionPolicy::Parallel { threads: 4 });
    for n in 1..=33usize {
        let x = input_batch(n, 100 + n as u64);
        let (a, ca) = seq.forward(&x);
        let (b, cb) = par.forward(&x);
        assert_eq!(a.dims(), b.dims(), "{label}: dims diverge at batch {n}");
        assert_eq!(
            a.as_slice(),
            b.as_slice(),
            "{label}: logits diverge at batch {n}"
        );
        assert_eq!(ca, cb, "{label}: op counts diverge at batch {n}");
    }
}

#[test]
fn shift_l1_net_parallel_matches_sequential() {
    assert_parity(&mut conv_net(&QuantScheme::l1(), 1), false, "l1");
}

#[test]
fn shift_l2_net_folded_parallel_matches_sequential() {
    assert_parity(&mut conv_net(&QuantScheme::l2(), 2), true, "l2-folded");
}

#[test]
fn fixed_point_net_parallel_matches_sequential() {
    assert_parity(&mut conv_net(&QuantScheme::fp4w8a(), 3), false, "fp4w8a");
}

#[test]
fn full_precision_net_parallel_matches_sequential() {
    assert_parity(&mut conv_net(&QuantScheme::full(), 4), true, "full-folded");
}

#[test]
fn residual_net_parallel_matches_sequential() {
    assert_parity(
        &mut residual_net(&QuantScheme::flight(1e-5), 5),
        false,
        "residual",
    );
    assert_parity(
        &mut residual_net(&QuantScheme::l1(), 6),
        true,
        "residual-folded",
    );
}

#[test]
fn logits_are_invariant_under_batch_composition() {
    // Per-image activation scales make an image's logits independent of
    // its batchmates: forwarding a batch equals forwarding each image
    // alone. (This is the invariant the parallel split relies on.)
    let mut net = conv_net(&QuantScheme::l2(), 7);
    let engine = IntNetwork::compile_with(&mut net, CompileOptions::new()).expect("compiles");
    let x = input_batch(5, 77);
    let (batched, _) = engine.forward(&x);
    let classes = batched.dims()[1];
    for i in 0..5 {
        let img = Tensor::from_vec(
            x.outer(i).to_vec(),
            &[1, IMG_DIMS[0], IMG_DIMS[1], IMG_DIMS[2]],
        );
        let (solo, _) = engine.forward(&img);
        assert_eq!(
            solo.as_slice(),
            &batched.as_slice()[i * classes..(i + 1) * classes],
            "image {i} depends on its batchmates"
        );
    }
}

#[test]
fn forward_into_reuses_or_replaces_the_buffer() {
    let mut net = conv_net(&QuantScheme::l1(), 8);
    let engine = IntNetwork::compile_with(&mut net, CompileOptions::new()).expect("compiles");
    let x = input_batch(3, 88);
    let (expected, expected_counts) = engine.forward(&x);

    // Right shape: the allocation is reused in place.
    let mut out = Tensor::zeros(expected.dims());
    let counts = engine.forward_into(&x, &mut out);
    assert_eq!(out.as_slice(), expected.as_slice());
    assert_eq!(counts, expected_counts);

    // Wrong shape: the buffer is replaced with the fresh logits.
    let mut wrong = Tensor::zeros(&[1]);
    engine.forward_into(&x, &mut wrong);
    assert_eq!(wrong.dims(), expected.dims());
    assert_eq!(wrong.as_slice(), expected.as_slice());
}

#[test]
fn parallel_forward_reports_workers_and_chunks() {
    let mut net = conv_net(&QuantScheme::l1(), 9);
    let sink = Arc::new(CollectingSink::new());
    let engine = IntNetwork::compile_with(
        &mut net,
        CompileOptions::new()
            .telemetry(Telemetry::new(sink.clone()))
            .threads(3),
    )
    .expect("compiles");
    let x = input_batch(5, 99);
    let (_, counts) = engine.forward(&x);

    let events = sink.events();
    let workers = events
        .iter()
        .find(|e| e.kind == EventKind::Gauge && e.name == "kernel.forward.workers")
        .expect("worker-count gauge emitted");
    assert_eq!(workers.value, 3.0, "batch 5 on 3 threads engages 3 workers");
    assert!(
        events
            .iter()
            .any(|e| e.kind == EventKind::SpanEnd && e.name == "kernel.forward"),
        "whole-pass span present"
    );
    let chunk_spans = events
        .iter()
        .filter(|e| {
            e.kind == EventKind::SpanEnd
                && e.name.starts_with("kernel.worker.")
                && e.name.ends_with(".chunk")
        })
        .count();
    assert_eq!(chunk_spans, 3, "one chunk span per worker");
    let images: f64 = events
        .iter()
        .filter(|e| e.kind == EventKind::Gauge && e.name.ends_with(".chunk.images"))
        .map(|e| e.value)
        .sum();
    assert_eq!(images, 5.0, "chunks cover the whole batch");
    let worker_shifts: u64 = events
        .iter()
        .filter(|e| e.kind == EventKind::Counter && e.name.ends_with(".chunk.shifts"))
        .map(|e| e.value as u64)
        .sum();
    assert_eq!(
        worker_shifts, counts.shifts,
        "per-worker shift counters must sum to the aggregate"
    );
}

#[test]
fn residual_slope_is_plumbed_through_compilation() {
    // Two identical nets except for the residual joining slope must
    // compile to engines that disagree — with the old hardcoded 0.01 the
    // slope would be silently ignored.
    let mut rng = TensorRng::seed(10);
    let x = uniform(&mut rng, &[2, 3, 6, 6], -1.0, 1.0);
    let scheme = QuantScheme::l1();

    let run = |slope: f32| {
        let mut rng = TensorRng::seed(21);
        let mut net = QuantNet::new();
        net.push_conv(QuantConv2d::new(&mut rng, &scheme, 3, 4, 3, 1, 1));
        let mut main = QuantNet::new();
        main.push_conv(QuantConv2d::new(&mut rng, &scheme, 4, 4, 3, 1, 1));
        net.push_residual(QuantResidualBlock::from_parts_with_slope(main, None, slope));
        let engine = IntNetwork::compile_with(&mut net, CompileOptions::new()).expect("compiles");
        engine.forward(&x).0
    };

    let steep = run(0.5);
    let default = run(0.01);
    assert!(
        steep.as_slice() != default.as_slice(),
        "changing the residual slope must change the compiled block's output"
    );
}

#[test]
fn compiled_net_matches_int_network_and_both_compile_paths_agree() {
    let x = input_batch(3, 55);

    // CompiledNet::compile + ExecCtx forward equals the IntNetwork
    // facade, folded and unfolded.
    for (fold, seed) in [(false, 11u64), (true, 12u64)] {
        let facade = IntNetwork::compile_with(
            &mut conv_net(&QuantScheme::l2(), seed),
            CompileOptions::new().fold_batch_norm(fold).sequential(),
        )
        .expect("compiles");
        let bare =
            CompiledNet::compile(&mut conv_net(&QuantScheme::l2(), seed), fold).expect("compiles");
        assert_eq!(bare.stages(), facade.stages());
        let mut ctx = ExecCtx::new();
        let (bl, bc) = bare.forward(&x, &mut ctx);
        let (fl, fc) = facade.forward(&x);
        assert_eq!(bl.as_slice(), fl.as_slice(), "fold={fold}: logits diverge");
        assert_eq!(bc, fc, "fold={fold}: counts diverge");
    }
}

#[test]
fn shared_compiled_net_serves_concurrent_contexts() {
    // The request-first split: one Arc<CompiledNet>, N threads each with
    // a private ExecCtx, all producing the reference logits bit-exactly.
    // A reused warm context must behave like a fresh one.
    let mut net = conv_net(&QuantScheme::l1(), 13);
    let engine =
        IntNetwork::compile_with(&mut net, CompileOptions::new().sequential()).expect("compiles");
    let shared = engine.compiled();
    let inputs: Vec<Tensor> = (0..6).map(|i| input_batch(2, 300 + i)).collect();
    let expected: Vec<Vec<f32>> = inputs
        .iter()
        .map(|x| engine.forward(x).0.as_slice().to_vec())
        .collect();

    std::thread::scope(|scope| {
        for worker in 0..4 {
            let shared = shared.clone();
            let inputs = &inputs;
            let expected = &expected;
            scope.spawn(move || {
                let mut ctx = ExecCtx::new();
                // Walk the inputs twice: the second pass runs on warmed
                // scratch arenas and must not change a single bit.
                for pass in 0..2 {
                    for (x, want) in inputs.iter().zip(expected) {
                        let (logits, _) = shared.forward(x, &mut ctx);
                        assert_eq!(
                            logits.as_slice(),
                            &want[..],
                            "worker {worker} pass {pass} diverges"
                        );
                    }
                }
            });
        }
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any `CompileOptions` combination must produce the same logits and
    /// counts as the plain sequential/null reference with matching
    /// folding — execution policy and telemetry are observability and
    /// scheduling knobs, never numerics knobs.
    #[test]
    fn random_compile_options_never_change_the_numbers(
        fold in any::<bool>(),
        sequential in any::<bool>(),
        threads in 0usize..6,
        trace in any::<bool>(),
        n in 1usize..7,
    ) {
        let mut reference_net = conv_net(&QuantScheme::l2(), 42);
        let reference = IntNetwork::compile_with(
            &mut reference_net,
            CompileOptions::new().fold_batch_norm(fold).sequential(),
        )
        .expect("compiles");

        let policy = if sequential {
            ExecutionPolicy::Sequential
        } else {
            ExecutionPolicy::Parallel { threads }
        };
        let telemetry = if trace {
            Telemetry::new(Arc::new(CollectingSink::new()))
        } else {
            Telemetry::null()
        };
        let mut net = conv_net(&QuantScheme::l2(), 42);
        let engine = IntNetwork::compile_with(
            &mut net,
            CompileOptions::new()
                .fold_batch_norm(fold)
                .policy(policy)
                .telemetry(telemetry),
        )
        .expect("compiles");

        let x = input_batch(n, 200 + n as u64);
        let (a, ca): (Tensor, OpCounts) = reference.forward(&x);
        let (b, cb) = engine.forward(&x);
        prop_assert_eq!(a.as_slice(), b.as_slice());
        prop_assert_eq!(ca, cb);
    }
}
