//! Parity suite for the lowered tap-program kernels.
//!
//! The lowered cores (precomputed offsets, interior/border split,
//! analytic op accounting) must be **bit-identical** — logits and
//! [`OpCounts`] — to the retained interpreted reference cores across the
//! whole geometry space: every kernel size, stride, padding, and odd
//! input shape, including degenerate all-border and all-interior cases.
//! The reference cores are the oracle; they count ops inside the loop,
//! so agreement also pins the counting conventions documented on
//! [`OpCounts`].

use std::sync::Arc;

use flight_kernels::fixed::{
    fixed_point_conv, fixed_point_conv_reference, fixed_point_conv_with_path, FixedWeights,
};
use flight_kernels::shift::{
    shift_add_conv, shift_add_conv_reference, shift_add_conv_with_path, ShiftCompileError,
    ShiftKernel,
};
use flight_kernels::{
    active_path, CompileOptions, IntNetwork, KernelPath, OpCounts, QuantActivations,
};
use flight_telemetry::{CollectingSink, EventKind, Telemetry};
use flight_tensor::{uniform, Conv2dGeometry, Tensor, TensorRng};
use flightnn::convert::{shift_plan, FilterPlan, ShiftPlan, SubFilter};
use flightnn::layers::QuantConv2d;
use flightnn::{QuantNet, QuantScheme};
use proptest::prelude::*;

/// Compiles a shift kernel for the given shape from a real quantized
/// conv layer.
fn shift_kernel(seed: u64, scheme: &QuantScheme, c: usize, f: usize, k: usize) -> ShiftKernel {
    let mut rng = TensorRng::seed(seed);
    let mut conv = QuantConv2d::new(&mut rng, scheme, c, f, k, 1, 0);
    let plan = shift_plan(&mut conv);
    ShiftKernel::compile(&plan, &[f, c, k, k])
}

fn activations(seed: u64, n: usize, c: usize, h: usize, w: usize) -> QuantActivations {
    let mut rng = TensorRng::seed(seed);
    let x = uniform(&mut rng, &[n, c, h, w], -1.0, 1.0);
    QuantActivations::quantize(&x, 8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Lowered shift-add conv == interpreted reference, bitwise, over the
    /// geometry space the interior/border split has to get right.
    #[test]
    fn lowered_shift_conv_is_bit_identical_to_reference(
        k_idx in 0usize..3,
        stride in 1usize..3,
        padding in 0usize..3,
        h in 3usize..12,
        w in 3usize..12,
        c in 1usize..4,
        f in 1usize..5,
        n in 1usize..4,
        seed in 0u64..1000,
    ) {
        let k = [1, 3, 5][k_idx];
        prop_assume!(h + 2 * padding >= k && w + 2 * padding >= k);

        let kernel = shift_kernel(seed, &QuantScheme::l2(), c, f, k);
        let qa = activations(seed.wrapping_add(1), n, c, h, w);

        let (lowered, lc) = shift_add_conv(&qa, &kernel, stride, padding);
        let (reference, rc) = shift_add_conv_reference(&qa, &kernel, stride, padding);
        prop_assert_eq!(lowered.as_slice(), reference.as_slice(),
            "logits diverge at k={} s={} p={} {}x{}", k, stride, padding, h, w);
        prop_assert_eq!(lc, rc,
            "op counts diverge at k={} s={} p={} {}x{}", k, stride, padding, h, w);
    }

    /// Lowered fixed-point conv == interpreted reference, bitwise.
    #[test]
    fn lowered_fixed_conv_is_bit_identical_to_reference(
        k_idx in 0usize..3,
        stride in 1usize..3,
        padding in 0usize..3,
        h in 3usize..12,
        w in 3usize..12,
        c in 1usize..4,
        f in 1usize..5,
        n in 1usize..4,
        seed in 0u64..1000,
    ) {
        let k = [1, 3, 5][k_idx];
        prop_assume!(h + 2 * padding >= k && w + 2 * padding >= k);

        let mut rng = TensorRng::seed(seed);
        let weights = FixedWeights::quantize(&uniform(&mut rng, &[f, c, k, k], -0.5, 0.5), 4);
        let qa = activations(seed.wrapping_add(1), n, c, h, w);

        let (lowered, lc) = fixed_point_conv(&qa, &weights, stride, padding);
        let (reference, rc) = fixed_point_conv_reference(&qa, &weights, stride, padding);
        prop_assert_eq!(lowered.as_slice(), reference.as_slice(),
            "outputs diverge at k={} s={} p={} {}x{}", k, stride, padding, h, w);
        prop_assert_eq!(lc, rc,
            "op counts diverge at k={} s={} p={} {}x{}", k, stride, padding, h, w);
    }
}

/// The dispatch paths every conv call can take: the detected one (AVX2
/// where the host has it), the portable lane fallback, and the pinned
/// per-image scalar path.
fn all_paths() -> [KernelPath; 3] {
    [active_path(), KernelPath::Portable, KernelPath::Scalar]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every dispatch path of the shift datapath — detected (AVX2 on this
    /// host if present), portable lanes, and scalar — produces logits and
    /// op counts bit-identical to the interpreted reference, across
    /// geometry × batch sizes 1..=33: below one lane, exact lane
    /// multiples, and non-lane-multiple remnants.
    #[test]
    fn every_shift_path_is_bit_identical_across_batches(
        k_idx in 0usize..2,
        stride in 1usize..3,
        padding in 0usize..2,
        h in 3usize..10,
        w in 3usize..10,
        c in 1usize..3,
        f in 1usize..4,
        n in 1usize..=33,
        seed in 0u64..1000,
    ) {
        let k = [1, 3][k_idx];
        prop_assume!(h + 2 * padding >= k && w + 2 * padding >= k);

        let kernel = shift_kernel(seed, &QuantScheme::l2(), c, f, k);
        let qa = activations(seed.wrapping_add(1), n, c, h, w);
        let (reference, rc) = shift_add_conv_reference(&qa, &kernel, stride, padding);

        for path in all_paths() {
            let (out, counts) = shift_add_conv_with_path(&qa, &kernel, stride, padding, path);
            prop_assert_eq!(out.as_slice(), reference.as_slice(),
                "{} logits diverge at k={} s={} p={} {}x{} n={}",
                path, k, stride, padding, h, w, n);
            prop_assert_eq!(counts, rc,
                "{} op counts diverge at k={} s={} p={} {}x{} n={}",
                path, k, stride, padding, h, w, n);
        }
    }

    /// Same path matrix for the fixed-point datapath.
    #[test]
    fn every_fixed_path_is_bit_identical_across_batches(
        k_idx in 0usize..2,
        stride in 1usize..3,
        padding in 0usize..2,
        h in 3usize..10,
        w in 3usize..10,
        c in 1usize..3,
        f in 1usize..4,
        n in 1usize..=33,
        seed in 0u64..1000,
    ) {
        let k = [1, 3][k_idx];
        prop_assume!(h + 2 * padding >= k && w + 2 * padding >= k);

        let mut rng = TensorRng::seed(seed);
        let weights = FixedWeights::quantize(&uniform(&mut rng, &[f, c, k, k], -0.5, 0.5), 4);
        let qa = activations(seed.wrapping_add(1), n, c, h, w);
        let (reference, rc) = fixed_point_conv_reference(&qa, &weights, stride, padding);

        for path in all_paths() {
            let (out, counts) = fixed_point_conv_with_path(&qa, &weights, stride, padding, path);
            prop_assert_eq!(out.as_slice(), reference.as_slice(),
                "{} outputs diverge at k={} s={} p={} {}x{} n={}",
                path, k, stride, padding, h, w, n);
            prop_assert_eq!(counts, rc,
                "{} op counts diverge at k={} s={} p={} {}x{} n={}",
                path, k, stride, padding, h, w, n);
        }
    }
}

#[test]
fn shift_counts_follow_k_shifts_k_minus_1_adds_analytically() {
    // Padding 0: every output position is interior and executes every
    // tap, so the totals close in closed form: `taps` shifts per position
    // and `taps − 1` adds per filter with at least one tap.
    let kernel = shift_kernel(3, &QuantScheme::l2(), 2, 3, 3);
    let qa = activations(4, 2, 2, 9, 9);
    let (_, counts) = shift_add_conv(&qa, &kernel, 1, 0);
    let positions = 7 * 7 * 2; // out 7x7, batch 2
    assert_eq!(counts.shifts, kernel.total_taps() as u64 * positions);
    assert!(counts.int_adds < counts.shifts, "k taps cost k−1 adds");
    assert_eq!(counts.int_mults, 0, "shift path never multiplies");
}

#[test]
fn fixed_counts_follow_one_mac_per_tap_analytically() {
    let mut rng = TensorRng::seed(5);
    let weights = FixedWeights::quantize(&uniform(&mut rng, &[3, 2, 3, 3], -0.5, 0.5), 4);
    let qa = activations(6, 2, 2, 9, 9);
    let (_, counts) = fixed_point_conv(&qa, &weights, 1, 0);
    let taps_per_position = 3 * 2 * 3 * 3;
    let positions = 7 * 7 * 2;
    assert_eq!(counts.int_mults, (taps_per_position * positions) as u64);
    assert_eq!(counts.int_mults, counts.int_adds, "one fused MAC per tap");
    assert_eq!(counts.shifts, 0, "fixed path never shifts");
}

#[test]
fn lowering_stats_partition_every_geometry() {
    let kernel = shift_kernel(7, &QuantScheme::l1(), 2, 3, 3);
    for (h, w, stride, padding) in [(7, 9, 1, 1), (8, 8, 2, 1), (3, 3, 1, 2), (9, 5, 2, 0)] {
        let geom = Conv2dGeometry::new(2, h, w, 3, stride, padding);
        let stats = kernel.lowering_stats(&geom);
        assert_eq!(
            stats.interior_positions + stats.border_positions,
            geom.out_positions(),
            "{h}x{w} s{stride} p{padding}: split must partition the output map"
        );
        if padding == 0 {
            assert_eq!(stats.border_positions, 0, "no padding → no border");
        }
    }
}

#[test]
fn try_compile_surfaces_errors_through_the_public_api() {
    let plan = ShiftPlan {
        filters: vec![FilterPlan {
            subfilters: vec![SubFilter {
                coefficients: vec![0.75, 0.0, 0.5, -1.0],
            }],
        }],
        filter_len: 4,
    };
    let err = ShiftKernel::try_compile(&plan, &[1, 1, 2, 2]).unwrap_err();
    assert!(
        matches!(
            err,
            ShiftCompileError::NotPowerOfTwo {
                filter: 0,
                index: 0,
                ..
            }
        ),
        "0.75 is not ±2^e: {err}"
    );
    // The panicking wrapper and the Result path agree on valid input.
    let good = ShiftPlan {
        filters: vec![FilterPlan {
            subfilters: vec![SubFilter {
                coefficients: vec![0.25, 0.0, 0.5, -1.0],
            }],
        }],
        filter_len: 4,
    };
    let a = ShiftKernel::try_compile(&good, &[1, 1, 2, 2]).expect("valid plan compiles");
    let b = ShiftKernel::compile(&good, &[1, 1, 2, 2]);
    assert_eq!(a.total_taps(), b.total_taps());
}

/// One small shift-datapath net: conv → conv → linear-ish tail kept
/// minimal so traced runs stay fast.
fn tiny_net(seed: u64) -> QuantNet {
    let mut rng = TensorRng::seed(seed);
    let mut net = QuantNet::new();
    net.push_conv(QuantConv2d::new(
        &mut rng,
        &QuantScheme::l1(),
        3,
        4,
        3,
        1,
        1,
    ));
    net.push_conv(QuantConv2d::new(
        &mut rng,
        &QuantScheme::l1(),
        4,
        4,
        3,
        1,
        1,
    ));
    net
}

#[test]
fn sequential_trace_emits_kernel_lowering_events() {
    let sink = Arc::new(CollectingSink::new());
    let engine = IntNetwork::compile_with(
        &mut tiny_net(11),
        CompileOptions::new()
            .telemetry(Telemetry::new(sink.clone()))
            .sequential(),
    )
    .expect("compiles");
    let mut rng = TensorRng::seed(12);
    let x = uniform(&mut rng, &[2, 3, 6, 6], -1.0, 1.0);
    let _ = engine.forward(&x);

    let events = sink.events();
    let spans = events
        .iter()
        .filter(|e| e.kind == EventKind::SpanEnd && e.name == "kernel.lowering")
        .count();
    assert_eq!(spans, 2, "one lowering span per conv stage");
    let interior = events
        .iter()
        .find(|e| e.kind == EventKind::Gauge && e.name == "kernel.lowering.interior_positions")
        .expect("interior-position gauge emitted");
    let border = events
        .iter()
        .find(|e| e.kind == EventKind::Gauge && e.name == "kernel.lowering.border_positions")
        .expect("border-position gauge emitted");
    // 6x6, k3 s1 p1 → 6x6 output with a 4x4 interior and 20-position border.
    assert_eq!(interior.value, 16.0);
    assert_eq!(border.value, 20.0);
    assert!(
        events
            .iter()
            .any(|e| e.kind == EventKind::Gauge && e.name == "kernel.lowering.taps_per_filter"),
        "taps-per-filter gauge emitted"
    );
}

#[test]
fn parallel_workers_attribute_lowering_events_through_prefix_sink() {
    let sink = Arc::new(CollectingSink::new());
    let engine = IntNetwork::compile_with(
        &mut tiny_net(13),
        CompileOptions::new()
            .telemetry(Telemetry::new(sink.clone()))
            .threads(2),
    )
    .expect("compiles");
    let mut rng = TensorRng::seed(14);
    let x = uniform(&mut rng, &[4, 3, 6, 6], -1.0, 1.0);
    let _ = engine.forward(&x);

    let events = sink.events();
    for worker in ["kernel.worker.00.", "kernel.worker.01."] {
        assert!(
            events
                .iter()
                .any(|e| e.kind == EventKind::SpanEnd
                    && e.name == format!("{worker}kernel.lowering")),
            "{worker} emits prefixed lowering spans"
        );
        assert!(
            events.iter().any(|e| e.kind == EventKind::Gauge
                && e.name == format!("{worker}kernel.lowering.interior_positions")),
            "{worker} emits prefixed lowering gauges"
        );
    }
}

#[test]
fn force_scalar_compile_option_matches_the_detected_path_bitwise() {
    let fast = IntNetwork::compile_with(&mut tiny_net(21), CompileOptions::new().sequential())
        .expect("compiles");
    let pinned = IntNetwork::compile_with(
        &mut tiny_net(21),
        CompileOptions::new().sequential().force_scalar(true),
    )
    .expect("compiles");
    assert_eq!(pinned.kernel_path(), KernelPath::Scalar);

    // 9 images: one full lane block plus a remnant image.
    let mut rng = TensorRng::seed(22);
    let x = uniform(&mut rng, &[9, 3, 6, 6], -1.0, 1.0);
    let (a, ca) = fast.forward(&x);
    let (b, cb) = pinned.forward(&x);
    assert_eq!(a.as_slice(), b.as_slice(), "forced scalar diverges");
    assert_eq!(ca, cb, "op counts are dispatch-invariant");
}

#[test]
fn traces_record_the_kernel_dispatch_path() {
    let sink = Arc::new(CollectingSink::new());
    let engine = IntNetwork::compile_with(
        &mut tiny_net(23),
        CompileOptions::new()
            .telemetry(Telemetry::new(sink.clone()))
            .sequential(),
    )
    .expect("compiles");
    let mut rng = TensorRng::seed(24);
    let x = uniform(&mut rng, &[2, 3, 6, 6], -1.0, 1.0);
    let _ = engine.forward(&x);

    let expected = format!("kernel.dispatch.{}", engine.kernel_path().name());
    let events = sink.events();
    assert!(
        events
            .iter()
            .any(|e| e.kind == EventKind::Gauge && e.name == expected && e.value == 1.0),
        "forward must gauge its dispatch path as {expected}"
    );
}

#[test]
fn null_sink_emits_nothing_but_computes_the_same() {
    // The lowered cores must not depend on telemetry being live.
    let traced_sink = Arc::new(CollectingSink::new());
    let traced = IntNetwork::compile_with(
        &mut tiny_net(15),
        CompileOptions::new()
            .telemetry(Telemetry::new(traced_sink))
            .sequential(),
    )
    .expect("compiles");
    let silent = IntNetwork::compile_with(&mut tiny_net(15), CompileOptions::new().sequential())
        .expect("compiles");
    let mut rng = TensorRng::seed(16);
    let x = uniform(&mut rng, &[3, 3, 6, 6], -1.0, 1.0);
    let (a, ca): (Tensor, OpCounts) = traced.forward(&x);
    let (b, cb) = silent.forward(&x);
    assert_eq!(a.as_slice(), b.as_slice());
    assert_eq!(ca, cb);
}
