//! Integer-engine integration tests: compiled pipelines must match the
//! float quantized network on real trained models, multiplier-free.

use flight_data::{Fidelity, SyntheticDataset};
use flight_kernels::{CompileOptions, IntNetwork};
use flight_nn::Layer;
use flight_tensor::TensorRng;
use flightnn::configs::NetworkConfig;
use flightnn::{FlightTrainer, QuantNet, QuantScheme};

fn trained(net_id: u8, scheme: &QuantScheme, epochs: usize) -> (QuantNet, SyntheticDataset) {
    let cfg = NetworkConfig::by_id(net_id);
    let data = SyntheticDataset::preset(cfg.dataset, Fidelity::Smoke, 5);
    let mut rng = TensorRng::seed(5);
    let mut net = cfg.build(scheme, &mut rng, data.classes(), data.image_dims(), 0.25);
    let mut trainer = FlightTrainer::new(scheme, 5e-3);
    trainer.fit(&mut net, &data.train_batches(16), epochs);
    (net, data)
}

/// Pre-quantizes an input batch to the 8-bit grid so both the float path
/// and the integer engine see identical values (the engine always
/// quantizes conv inputs; the float QuantNet does not quantize the raw
/// image).
fn as_8bit(x: &flight_tensor::Tensor) -> flight_tensor::Tensor {
    flight_kernels::QuantActivations::quantize(x, 8).dequantize()
}

fn max_logit_gap(a: &flight_tensor::Tensor, b: &flight_tensor::Tensor) -> f32 {
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .fold(0.0f32, |m, (&x, &y)| m.max((x - y).abs()))
}

#[test]
fn vgg_lightnn_pipeline_matches_float_path() {
    let (mut net, data) = trained(1, &QuantScheme::l2(), 2);
    let engine = IntNetwork::compile_with(&mut net, CompileOptions::new()).expect("compiles");
    let input = as_8bit(&data.test_batches(8)[0].input);
    let float_logits = net.forward(&input, false);
    let (int_logits, counts) = engine.forward(&input);

    let gap = max_logit_gap(&float_logits, &int_logits);
    let scale = float_logits.abs_max().max(1.0);
    // The float path carries full-precision activations; the engine
    // re-quantizes them to 8 bits at every stage, so the achievable gap
    // is a property of the trained weights (hence of the RNG stream),
    // not a fixed constant. ~3% relative is typical for this smoke
    // configuration; top-1 agreement is pinned separately by
    // integer_accuracy_matches_float_accuracy.
    assert!(
        gap < 8e-2 * scale,
        "integer pipeline diverges: gap {gap} at logit scale {scale}"
    );
    assert_eq!(counts.int_mults, 0, "L-2 pipeline must be multiplier-free");
    assert!(counts.shifts > 0);
}

#[test]
fn resnet_flightnn_pipeline_matches_float_path() {
    let (mut net, data) = trained(2, &QuantScheme::flight(0.0), 2);
    let engine = IntNetwork::compile_with(&mut net, CompileOptions::new()).expect("compiles");
    let input = as_8bit(&data.test_batches(4)[0].input);
    let float_logits = net.forward(&input, false);
    let (int_logits, counts) = engine.forward(&input);
    let gap = max_logit_gap(&float_logits, &int_logits);
    let scale = float_logits.abs_max().max(1.0);
    // Residual adds compound the per-stage activation re-quantization
    // noise (see the note in vgg_lightnn_pipeline_matches_float_path).
    assert!(gap < 1.5e-1 * scale, "gap {gap} at scale {scale}");
    assert_eq!(counts.int_mults, 0);
}

#[test]
fn fixed_point_pipeline_multiplies_instead_of_shifting() {
    let (mut net, data) = trained(1, &QuantScheme::fp4w8a(), 2);
    let engine = IntNetwork::compile_with(&mut net, CompileOptions::new()).expect("compiles");
    let input = as_8bit(&data.test_batches(4)[0].input);
    let float_logits = net.forward(&input, false);
    let (int_logits, counts) = engine.forward(&input);
    let gap = max_logit_gap(&float_logits, &int_logits);
    let scale = float_logits.abs_max().max(1.0);
    // 4-bit weights leave less headroom than the L-2 scheme, so the
    // re-quantization gap runs wider (see the vgg test's note).
    assert!(gap < 2e-1 * scale, "gap {gap} at scale {scale}");
    assert!(counts.int_mults > 0);
    assert_eq!(counts.shifts, 0);
}

#[test]
fn folded_pipeline_is_bit_identical_to_unfolded() {
    let (mut net, data) = trained(1, &QuantScheme::l1(), 2);
    let plain = IntNetwork::compile_with(&mut net, CompileOptions::new()).expect("compiles");
    let folded = IntNetwork::compile_with(&mut net, CompileOptions::new().fold_batch_norm(true))
        .expect("compiles folded");
    let batch = &data.test_batches(4)[0];
    let (a, _) = plain.forward(&batch.input);
    let (b, _) = folded.forward(&batch.input);
    assert!(
        a.allclose(&b, 1e-5),
        "batch-norm folding changed the results"
    );
}

#[test]
fn integer_accuracy_matches_float_accuracy() {
    use flight_nn::loss::top_k_accuracy;
    let (mut net, data) = trained(1, &QuantScheme::l2(), 6);
    let engine = IntNetwork::compile_with(&mut net, CompileOptions::new()).expect("compiles");
    let mut float_correct = 0.0;
    let mut int_correct = 0.0;
    let mut n = 0;
    for batch in data.test_batches(16) {
        let fl = net.forward(&batch.input, false);
        let (il, _) = engine.forward(&batch.input);
        float_correct += top_k_accuracy(&fl, &batch.labels, 1) * batch.len() as f32;
        int_correct += top_k_accuracy(&il, &batch.labels, 1) * batch.len() as f32;
        n += batch.len();
    }
    let (fa, ia) = (float_correct / n as f32, int_correct / n as f32);
    assert!(
        (fa - ia).abs() < 0.03,
        "integer accuracy {ia} drifted from float accuracy {fa}"
    );
    assert!(fa > 0.3, "model should have learned something: {fa}");
}

#[test]
fn op_counts_track_mean_k() {
    // An L-2 model costs ~2x the shifts of an L-1 model of identical
    // architecture on the same input.
    let (mut l1, data) = trained(1, &QuantScheme::l1(), 1);
    let (mut l2, _) = trained(1, &QuantScheme::l2(), 1);
    let e1 = IntNetwork::compile_with(&mut l1, CompileOptions::new()).expect("compiles");
    let e2 = IntNetwork::compile_with(&mut l2, CompileOptions::new()).expect("compiles");
    let batch = &data.test_batches(2)[0];
    let (_, c1) = e1.forward(&batch.input);
    let (_, c2) = e2.forward(&batch.input);
    let ratio = c2.shifts as f64 / c1.shifts as f64;
    assert!(
        (1.5..2.4).contains(&ratio),
        "L-2/L-1 shift ratio {ratio} (got {} vs {})",
        c2.shifts,
        c1.shifts
    );
}

#[test]
fn traced_forward_matches_untraced_and_emits_stage_events() {
    use flight_telemetry::{CollectingSink, EventKind, Telemetry};
    use std::sync::Arc;

    let (mut net, data) = trained(1, &QuantScheme::l1(), 1);
    // Sequential policy: per-stage spans only exist on the sequential
    // traced path (the parallel path reports per-worker spans instead).
    let engine = IntNetwork::compile_with(
        &mut net,
        CompileOptions::new().fold_batch_norm(true).sequential(),
    )
    .expect("compiles");
    let input = as_8bit(&data.test_batches(2)[0].input);
    let (plain_logits, plain_counts) = engine.forward(&input);

    let sink = Arc::new(CollectingSink::new());
    let engine = engine.with_telemetry(Telemetry::new(sink.clone()));
    let (traced_logits, traced_counts) = engine.forward(&input);

    assert!(
        plain_logits.allclose(&traced_logits, 0.0),
        "tracing must not change the results"
    );
    assert_eq!(plain_counts, traced_counts);

    let events = sink.events();
    let stage_ends = events
        .iter()
        .filter(|e| e.kind == EventKind::SpanEnd && e.name.starts_with("kernel.stage."))
        .count();
    assert_eq!(stage_ends, engine.stages(), "one latency span per stage");
    assert!(
        events
            .iter()
            .any(|e| e.kind == EventKind::SpanEnd && e.name == "kernel.forward"),
        "whole-pass span present"
    );
    let shift_total: u64 = events
        .iter()
        .filter(|e| e.kind == EventKind::Counter && e.name.ends_with(".shifts"))
        .map(|e| e.value as u64)
        .sum();
    assert_eq!(
        shift_total, traced_counts.shifts,
        "per-stage shift counters must sum to the aggregate"
    );
}

#[test]
fn quantization_saturation_counters_track_every_quantization_site() {
    use flight_telemetry::{CollectingSink, EventKind, Telemetry};
    use std::sync::Arc;

    let (mut net, data) = trained(1, &QuantScheme::l1(), 1);
    let sink = Arc::new(CollectingSink::new());
    let engine = IntNetwork::compile_with(
        &mut net,
        CompileOptions::new()
            .telemetry(Telemetry::new(sink.clone()))
            .sequential(),
    )
    .expect("compiles");
    let batch = 3;
    let input = as_8bit(&data.test_batches(batch)[0].input);
    engine.forward(&input);

    let events = sink.events();
    let total = |suffix: &str| -> u64 {
        events
            .iter()
            .filter(|e| {
                e.kind == EventKind::Counter
                    && e.name.contains("kernel.qact.")
                    && e.name.ends_with(suffix)
            })
            .map(|e| e.value as u64)
            .sum()
    };
    let saturated = total(".saturated");
    let quantized = total(".quantized");
    assert!(quantized > 0, "conv inputs were quantized");
    assert!(saturated <= quantized);
    // The per-image dynamic scale puts each image's max-magnitude
    // element exactly on the rail, so every quantization of a nonzero
    // batch saturates at least `batch` codes.
    let conv_quantizations = events
        .iter()
        .filter(|e| e.kind == EventKind::Counter && e.name.ends_with(".quantized"))
        .count() as u64;
    assert!(conv_quantizations > 0);
    assert!(
        saturated >= conv_quantizations * batch as u64,
        "≥ batch rail hits per site: {saturated} < {conv_quantizations}×{batch}"
    );
    assert!(
        events
            .iter()
            .any(|e| e.name == "kernel.qact.conv.saturated"),
        "conv stage labelled"
    );
    assert!(
        events
            .iter()
            .any(|e| e.name == "kernel.qact.linear.quantized"),
        "linear stage labelled"
    );
}

#[test]
fn parallel_workers_emit_per_image_latency_histograms() {
    use flight_telemetry::{CollectingSink, EventKind, Log2Histogram, Telemetry};
    use std::sync::Arc;

    let (mut net, data) = trained(1, &QuantScheme::l1(), 1);
    let sink = Arc::new(CollectingSink::new());
    let workers = 2;
    let engine = IntNetwork::compile_with(
        &mut net,
        CompileOptions::new()
            .fold_batch_norm(true)
            .telemetry(Telemetry::new(sink.clone()))
            .threads(workers),
    )
    .expect("compiles");
    let batch = 6;
    let input = as_8bit(&data.test_batches(batch)[0].input);

    // Tracing image-by-image must not change results vs the untraced
    // whole-chunk walk.
    let untraced = engine.clone().with_telemetry(Telemetry::null());
    let (plain_logits, plain_counts) = untraced.forward(&input);
    let (traced_logits, traced_counts) = engine.forward(&input);
    assert!(
        plain_logits.allclose(&traced_logits, 0.0),
        "per-image tracing changed the logits"
    );
    assert_eq!(plain_counts, traced_counts);

    let events = sink.events();
    for w in 0..workers {
        for which in ["e2e", "compute", "queue_wait"] {
            let name = format!("kernel.worker.{w:02}.chunk.latency.{which}");
            let event = events
                .iter()
                .find(|e| e.kind == EventKind::Log2Hist && e.name == name)
                .unwrap_or_else(|| panic!("missing histogram {name}"));
            // Each worker got batch/workers images; every one recorded.
            assert_eq!(event.value, (batch / workers) as f64, "{name}");
            let hist = Log2Histogram::from_bucket_pairs(&event.buckets, 0.0, f64::MAX)
                .expect("bucket labels round-trip");
            assert_eq!(hist.total(), (batch / workers) as u64);
        }
    }
    // Physical ordering per worker: queue_wait <= e2e and compute <= e2e
    // on maxima (e2e spans dispatch to completion).
    let stats = |name: &str, key: &str| -> f64 {
        let e = events.iter().find(|e| e.name == name).unwrap();
        let v = flight_telemetry::json::JsonValue::parse(e.text.as_deref().unwrap()).unwrap();
        v.get(key).and_then(|x| x.as_f64()).unwrap()
    };
    let e2e_max = stats("kernel.worker.00.chunk.latency.e2e", "max");
    assert!(stats("kernel.worker.00.chunk.latency.compute", "max") <= e2e_max);
    assert!(stats("kernel.worker.00.chunk.latency.queue_wait", "min") <= e2e_max);
}

#[test]
fn full_precision_network_still_compiles() {
    let (mut net, data) = trained(1, &QuantScheme::full(), 1);
    let engine = IntNetwork::compile_with(&mut net, CompileOptions::new()).expect("compiles");
    let input = as_8bit(&data.test_batches(2)[0].input);
    let float_logits = net.forward(&input, false);
    let (logits, counts) = engine.forward(&input);
    let gap = max_logit_gap(&float_logits, &logits);
    let scale = float_logits.abs_max().max(1.0);
    assert!(gap < 1e-2 * scale, "gap {gap} at scale {scale}");
    assert!(counts.float_mults > 0);
    assert_eq!(counts.shifts + counts.int_mults, 0);
}

#[test]
fn profiled_forward_is_bit_identical_and_attributes_every_stage() {
    let (mut net, data) = trained(1, &QuantScheme::l2(), 1);
    let engine = IntNetwork::compile_with(&mut net, CompileOptions::new()).expect("compiles");
    let compiled = engine.compiled();
    let input = as_8bit(&data.test_batches(4)[0].input);

    let mut ctx = flight_kernels::ExecCtx::new();
    let (plain_logits, plain_counts) = compiled.forward(&input, &mut ctx);

    let mut sample = flight_telemetry::StageSample::new();
    let (prof_logits, prof_counts) = compiled.forward_profiled(&input, &mut ctx, &mut sample);

    assert_eq!(
        prof_logits.as_slice(),
        plain_logits.as_slice(),
        "profiling must not perturb the logits"
    );
    assert_eq!(
        prof_counts, plain_counts,
        "profiling must not change op counts"
    );

    // Every compiled stage appears once, in order, with the engine's
    // dispatch path tag; the per-stage op totals sum to the whole pass.
    assert_eq!(sample.stages(), compiled.stages());
    assert_eq!(sample.path(), ctx.kernel_path().name());
    let per_stage_ops: u64 = (0..sample.stages())
        .map(|i| sample.stage(i).expect("recorded").2)
        .sum();
    assert_eq!(per_stage_ops, prof_counts.total());
    let (first_kind, _, _) = sample.stage(0).expect("stage 0");
    assert_eq!(first_kind, "conv", "network 1 opens with a conv stage");
}
