//! Integer activation planes.

use flight_tensor::Tensor;

/// A batch of activations quantized to signed integers with one shared
/// scale: `x ≈ data[i] · scale`.
///
/// Matches the semantics of `flightnn::layers::ActQuant` (symmetric,
/// per-tensor dynamic range), but keeps the integer codes so the integer
/// kernels can consume them directly.
///
/// # Example
///
/// ```
/// use flight_kernels::QuantActivations;
/// use flight_tensor::Tensor;
///
/// let x = Tensor::from_slice(&[1.0, -0.5, 0.25]);
/// let q = QuantActivations::quantize(&x, 8);
/// assert_eq!(q.codes()[0], 127);
/// let back = q.dequantize();
/// assert!(back.allclose(&x, 1.0 / 127.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuantActivations {
    codes: Vec<i32>,
    scale: f32,
    dims: Vec<usize>,
}

impl QuantActivations {
    /// Quantizes a float tensor to `bits` (sign included) with a
    /// per-tensor scale `max|x| / (2^{bits−1} − 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `bits < 2`.
    pub fn quantize(x: &Tensor, bits: u32) -> Self {
        assert!(bits >= 2, "activation quantization needs at least 2 bits");
        let qmax = ((1u32 << (bits - 1)) - 1) as f32;
        let max = x.abs_max();
        let scale = if max == 0.0 { 1.0 } else { max / qmax };
        let codes = x
            .as_slice()
            .iter()
            .map(|&v| (v / scale).round().clamp(-qmax, qmax) as i32)
            .collect();
        QuantActivations {
            codes,
            scale,
            dims: x.dims().to_vec(),
        }
    }

    /// The integer codes, row-major.
    pub fn codes(&self) -> &[i32] {
        &self.codes
    }

    /// The shared scale.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Original tensor dims.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Reconstructs the float tensor `codes · scale`.
    pub fn dequantize(&self) -> Tensor {
        Tensor::from_vec(
            self.codes.iter().map(|&c| c as f32 * self.scale).collect(),
            &self.dims,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flight_tensor::{uniform, TensorRng};

    #[test]
    fn round_trip_error_is_within_half_step() {
        let mut rng = TensorRng::seed(1);
        let x = uniform(&mut rng, &[2, 3, 4, 4], -2.0, 2.0);
        let q = QuantActivations::quantize(&x, 8);
        let back = q.dequantize();
        let step = q.scale();
        for (&a, &b) in x.as_slice().iter().zip(back.as_slice()) {
            assert!((a - b).abs() <= step / 2.0 + 1e-6);
        }
    }

    #[test]
    fn codes_stay_in_range() {
        let mut rng = TensorRng::seed(2);
        let x = uniform(&mut rng, &[64], -5.0, 5.0);
        for bits in [2u32, 4, 8] {
            let q = QuantActivations::quantize(&x, bits);
            let qmax = (1i32 << (bits - 1)) - 1;
            assert!(q.codes().iter().all(|&c| c.abs() <= qmax));
        }
    }

    #[test]
    fn matches_flightnn_act_quant() {
        use flight_nn::Layer;
        let mut rng = TensorRng::seed(3);
        let x = uniform(&mut rng, &[32], -1.5, 1.5);
        let mut aq = flightnn::layers::ActQuant::new(8);
        let reference = aq.forward(&x, false);
        let q = QuantActivations::quantize(&x, 8).dequantize();
        assert!(q.allclose(&reference, 1e-6));
    }

    #[test]
    fn zero_tensor_is_stable() {
        let q = QuantActivations::quantize(&Tensor::zeros(&[4]), 8);
        assert!(q.codes().iter().all(|&c| c == 0));
        assert_eq!(q.scale(), 1.0);
    }
}
