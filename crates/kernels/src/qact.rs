//! Integer activation planes.

use flight_tensor::Tensor;

/// A batch of activations quantized to signed integers with one shared
/// scale: `x ≈ data[i] · scale`.
///
/// Matches the semantics of `flightnn::layers::ActQuant` (symmetric,
/// per-tensor dynamic range), but keeps the integer codes so the integer
/// kernels can consume them directly.
///
/// # Example
///
/// ```
/// use flight_kernels::QuantActivations;
/// use flight_tensor::Tensor;
///
/// let x = Tensor::from_slice(&[1.0, -0.5, 0.25]);
/// let q = QuantActivations::quantize(&x, 8);
/// assert_eq!(q.codes()[0], 127);
/// let back = q.dequantize();
/// assert!(back.allclose(&x, 1.0 / 127.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuantActivations {
    codes: Vec<i32>,
    scale: f32,
    dims: Vec<usize>,
}

impl QuantActivations {
    /// Quantizes a float tensor to `bits` (sign included) with a
    /// per-tensor scale `max|x| / (2^{bits−1} − 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `bits < 2`.
    pub fn quantize(x: &Tensor, bits: u32) -> Self {
        assert!(bits >= 2, "activation quantization needs at least 2 bits");
        let qmax = ((1u32 << (bits - 1)) - 1) as f32;
        let max = x.abs_max();
        let scale = if max == 0.0 { 1.0 } else { max / qmax };
        let codes = x
            .as_slice()
            .iter()
            .map(|&v| (v / scale).round().clamp(-qmax, qmax) as i32)
            .collect();
        QuantActivations {
            codes,
            scale,
            dims: x.dims().to_vec(),
        }
    }

    /// Quantizes one contiguous slab into a caller-owned code buffer and
    /// returns the scale. `codes` is cleared first, so a worker can reuse
    /// one buffer across stages without reallocating — the scratch-arena
    /// path of the batched execution engine.
    ///
    /// # Panics
    ///
    /// Panics if `bits < 2`.
    pub fn quantize_slice_into(x: &[f32], bits: u32, codes: &mut Vec<i32>) -> f32 {
        assert!(bits >= 2, "activation quantization needs at least 2 bits");
        let qmax = ((1u32 << (bits - 1)) - 1) as f32;
        let max = x.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let scale = if max == 0.0 { 1.0 } else { max / qmax };
        codes.clear();
        codes.reserve(x.len());
        codes.extend(
            x.iter()
                .map(|&v| (v / scale).round().clamp(-qmax, qmax) as i32),
        );
        scale
    }

    /// Quantizes each image of a `[n, …]` batch independently: image `b`
    /// gets its own scale `max|x_b| / (2^{bits−1} − 1)` in `scales[b]`,
    /// and its codes land in `codes[b·stride .. (b+1)·stride]` where
    /// `stride = x.len() / n`. Both buffers are cleared and refilled.
    ///
    /// Per-image scales make each image's integer pipeline independent of
    /// its batchmates, which is what lets the parallel engine split a
    /// batch across workers and still produce logits bit-identical to the
    /// sequential path (and to submitting the image alone).
    ///
    /// # Panics
    ///
    /// Panics if `bits < 2` or `x` has no dims.
    pub fn quantize_per_image_into(
        x: &Tensor,
        bits: u32,
        codes: &mut Vec<i32>,
        scales: &mut Vec<f32>,
    ) {
        assert!(bits >= 2, "activation quantization needs at least 2 bits");
        assert!(!x.dims().is_empty(), "batch tensor needs a leading dim");
        let n = x.dims()[0];
        let qmax = ((1u32 << (bits - 1)) - 1) as f32;
        let stride = x.len().checked_div(n).unwrap_or(0);
        let data = x.as_slice();
        codes.clear();
        codes.reserve(data.len());
        scales.clear();
        scales.reserve(n);
        for b in 0..n {
            let slab = &data[b * stride..(b + 1) * stride];
            let max = slab.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            let scale = if max == 0.0 { 1.0 } else { max / qmax };
            scales.push(scale);
            codes.extend(
                slab.iter()
                    .map(|&v| (v / scale).round().clamp(-qmax, qmax) as i32),
            );
        }
    }

    /// The integer codes, row-major.
    pub fn codes(&self) -> &[i32] {
        &self.codes
    }

    /// Counts codes sitting at the representable rail `±(2^{bits−1}−1)`.
    ///
    /// With a dynamic per-image scale the clamp in quantization never
    /// truncates — the max-magnitude value lands exactly on the rail —
    /// so this measures how much of the tensor is pinned at the extreme
    /// code, not how much was cut off. A high rail rate means the
    /// distribution has heavy tails relative to the grid (one outlier is
    /// stretching the scale), which is the activation-quantization
    /// failure mode `flightctl health` watches through the
    /// `kernel.qact.<stage>.saturated` counters.
    ///
    /// # Panics
    ///
    /// Panics if `bits < 2`.
    pub fn saturation_count(codes: &[i32], bits: u32) -> u64 {
        assert!(bits >= 2, "activation quantization needs at least 2 bits");
        let qmax = ((1u32 << (bits - 1)) - 1) as i32;
        codes.iter().filter(|c| c.abs() >= qmax).count() as u64
    }

    /// The shared scale.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Original tensor dims.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Reconstructs the float tensor `codes · scale`.
    pub fn dequantize(&self) -> Tensor {
        Tensor::from_vec(
            self.codes.iter().map(|&c| c as f32 * self.scale).collect(),
            &self.dims,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flight_tensor::{uniform, TensorRng};

    #[test]
    fn round_trip_error_is_within_half_step() {
        let mut rng = TensorRng::seed(1);
        let x = uniform(&mut rng, &[2, 3, 4, 4], -2.0, 2.0);
        let q = QuantActivations::quantize(&x, 8);
        let back = q.dequantize();
        let step = q.scale();
        for (&a, &b) in x.as_slice().iter().zip(back.as_slice()) {
            assert!((a - b).abs() <= step / 2.0 + 1e-6);
        }
    }

    #[test]
    fn codes_stay_in_range() {
        let mut rng = TensorRng::seed(2);
        let x = uniform(&mut rng, &[64], -5.0, 5.0);
        for bits in [2u32, 4, 8] {
            let q = QuantActivations::quantize(&x, bits);
            let qmax = (1i32 << (bits - 1)) - 1;
            assert!(q.codes().iter().all(|&c| c.abs() <= qmax));
        }
    }

    #[test]
    fn matches_flightnn_act_quant() {
        use flight_nn::Layer;
        let mut rng = TensorRng::seed(3);
        let x = uniform(&mut rng, &[32], -1.5, 1.5);
        let mut aq = flightnn::layers::ActQuant::new(8);
        let reference = aq.forward(&x, false);
        let q = QuantActivations::quantize(&x, 8).dequantize();
        assert!(q.allclose(&reference, 1e-6));
    }

    #[test]
    fn zero_tensor_is_stable() {
        let q = QuantActivations::quantize(&Tensor::zeros(&[4]), 8);
        assert!(q.codes().iter().all(|&c| c == 0));
        assert_eq!(q.scale(), 1.0);
    }

    #[test]
    fn slice_into_matches_quantize_and_reuses_buffer() {
        let mut rng = TensorRng::seed(11);
        let x = uniform(&mut rng, &[1, 3, 4, 4], -1.5, 1.5);
        let reference = QuantActivations::quantize(&x, 8);
        let mut codes = vec![99; 3]; // stale garbage must be cleared
        let scale = QuantActivations::quantize_slice_into(x.as_slice(), 8, &mut codes);
        assert_eq!(scale, reference.scale());
        assert_eq!(codes, reference.codes());
    }

    #[test]
    fn per_image_matches_quantizing_each_image_alone() {
        let mut rng = TensorRng::seed(12);
        let x = uniform(&mut rng, &[3, 2, 4, 4], -2.0, 2.0);
        let mut codes = Vec::new();
        let mut scales = Vec::new();
        QuantActivations::quantize_per_image_into(&x, 8, &mut codes, &mut scales);
        assert_eq!(scales.len(), 3);
        assert_eq!(codes.len(), x.len());
        let stride = x.len() / 3;
        for b in 0..3 {
            let img = Tensor::from_vec(x.outer(b).to_vec(), &[1, 2, 4, 4]);
            let solo = QuantActivations::quantize(&img, 8);
            assert_eq!(scales[b], solo.scale(), "image {b} scale");
            assert_eq!(
                &codes[b * stride..(b + 1) * stride],
                solo.codes(),
                "image {b} codes"
            );
        }
    }

    #[test]
    fn saturation_counts_codes_at_the_rail() {
        // Dynamic scale: the max-magnitude element always sits on the
        // rail, so a well-spread tensor has exactly the extremes there.
        let x = Tensor::from_slice(&[1.0, -1.0, 0.5, 0.25, 0.0]);
        let q = QuantActivations::quantize(&x, 8);
        assert_eq!(QuantActivations::saturation_count(q.codes(), 8), 2);
        // A heavy-tailed tensor pins only its outlier.
        let y = Tensor::from_slice(&[100.0, 0.1, 0.2, 0.05]);
        let qy = QuantActivations::quantize(&y, 8);
        assert_eq!(QuantActivations::saturation_count(qy.codes(), 8), 1);
        // All-zero codes never saturate.
        let z = QuantActivations::quantize(&Tensor::zeros(&[4]), 8);
        assert_eq!(QuantActivations::saturation_count(z.codes(), 8), 0);
        // At 2 bits the rail is ±1, so most nonzero codes sit on it.
        let q2 = QuantActivations::quantize(&x, 2);
        assert_eq!(QuantActivations::saturation_count(q2.codes(), 2), 3);
    }

    #[test]
    fn per_image_handles_empty_batch_and_zero_images() {
        let mut codes = vec![1, 2];
        let mut scales = vec![0.5];
        QuantActivations::quantize_per_image_into(
            &Tensor::zeros(&[0, 2, 2]),
            8,
            &mut codes,
            &mut scales,
        );
        assert!(codes.is_empty());
        assert!(scales.is_empty());
        QuantActivations::quantize_per_image_into(
            &Tensor::zeros(&[2, 3]),
            8,
            &mut codes,
            &mut scales,
        );
        assert_eq!(scales, vec![1.0, 1.0], "all-zero images keep scale 1");
        assert!(codes.iter().all(|&c| c == 0));
    }
}
