//! Operation counting shared by the kernels and the ASIC energy model.

use serde::{Deserialize, Serialize};

/// Arithmetic operations executed by a kernel invocation.
///
/// The FPGA/ASIC arguments of the paper reduce to these counts: a
/// fixed-point datapath spends integer multiplies, a (F)LightNN datapath
/// spends barrel shifts and adds, a full-precision datapath spends float
/// multiplies and adds.
///
/// # Counting conventions
///
/// Counts charge only **executed** taps — a tap clipped away by padding
/// costs nothing, so border positions are cheaper than interior ones.
/// Per output position and filter with `t` executed taps:
///
/// * **shift-add datapath** (`shifts`/`int_adds`): `t` shifts and
///   `t − 1` adds — the paper's §3 cost model (`k` shifts, `k − 1`
///   adds): an accumulator seeded from the first shifted term needs one
///   add per *additional* term. Positions with `t = 0` charge nothing
///   (`saturating_sub`).
/// * **fixed-point datapath** (`int_mults`/`int_adds`): `t` multiplies
///   and `t` accumulates — a fused MAC per tap, so the two fields are
///   always equal for this path.
///
/// The lowered kernels precompute these totals per geometry (interior
/// analytically, border by dry run) and must stay bit-identical to the
/// interpreted reference cores, which count inside the loop; the parity
/// tests in `crates/kernels/tests/lowering.rs` pin both conventions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct OpCounts {
    /// 32-bit float multiplies.
    pub float_mults: u64,
    /// 32-bit float additions.
    pub float_adds: u64,
    /// Integer multiplies (fixed-point datapath).
    pub int_mults: u64,
    /// Integer additions / accumulations.
    pub int_adds: u64,
    /// Barrel shifts ((F)LightNN datapath).
    pub shifts: u64,
}

impl OpCounts {
    /// Elementwise sum of two counts.
    pub fn merged(self, other: OpCounts) -> OpCounts {
        OpCounts {
            float_mults: self.float_mults + other.float_mults,
            float_adds: self.float_adds + other.float_adds,
            int_mults: self.int_mults + other.int_mults,
            int_adds: self.int_adds + other.int_adds,
            shifts: self.shifts + other.shifts,
        }
    }

    /// Total operations of any kind.
    pub fn total(&self) -> u64 {
        self.float_mults + self.float_adds + self.int_mults + self.int_adds + self.shifts
    }

    /// Elementwise difference from an earlier snapshot (saturating, so a
    /// stale snapshot can never underflow). Telemetry uses this to turn
    /// a running accumulator into per-stage costs.
    pub fn delta(self, earlier: OpCounts) -> OpCounts {
        OpCounts {
            float_mults: self.float_mults.saturating_sub(earlier.float_mults),
            float_adds: self.float_adds.saturating_sub(earlier.float_adds),
            int_mults: self.int_mults.saturating_sub(earlier.int_mults),
            int_adds: self.int_adds.saturating_sub(earlier.int_adds),
            shifts: self.shifts.saturating_sub(earlier.shifts),
        }
    }

    /// The counts as `(field name, value)` pairs, in declaration order.
    pub fn fields(&self) -> [(&'static str, u64); 5] {
        [
            ("float_mults", self.float_mults),
            ("float_adds", self.float_adds),
            ("int_mults", self.int_mults),
            ("int_adds", self.int_adds),
            ("shifts", self.shifts),
        ]
    }
}

impl std::ops::Add for OpCounts {
    type Output = OpCounts;
    fn add(self, rhs: OpCounts) -> OpCounts {
        self.merged(rhs)
    }
}

impl std::ops::AddAssign for OpCounts {
    fn add_assign(&mut self, rhs: OpCounts) {
        *self = self.merged(rhs);
    }
}

/// Counts merge associatively, so per-worker accumulators from the
/// parallel engine reduce with a plain `.sum()` in any grouping.
impl std::iter::Sum for OpCounts {
    fn sum<I: Iterator<Item = OpCounts>>(iter: I) -> OpCounts {
        iter.fold(OpCounts::default(), OpCounts::merged)
    }
}

impl std::fmt::Display for OpCounts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fmul {} fadd {} imul {} iadd {} shift {}",
            self.float_mults, self.float_adds, self.int_mults, self.int_adds, self.shifts
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let a = OpCounts {
            int_mults: 2,
            shifts: 3,
            ..OpCounts::default()
        };
        let b = OpCounts {
            int_adds: 5,
            shifts: 1,
            ..OpCounts::default()
        };
        let c = a + b;
        assert_eq!(c.int_mults, 2);
        assert_eq!(c.int_adds, 5);
        assert_eq!(c.shifts, 4);
        assert_eq!(c.total(), 11);
    }

    #[test]
    fn sum_reduces_associatively() {
        let parts = [
            OpCounts {
                shifts: 3,
                int_adds: 2,
                ..OpCounts::default()
            },
            OpCounts {
                shifts: 1,
                float_mults: 9,
                ..OpCounts::default()
            },
            OpCounts {
                int_mults: 4,
                ..OpCounts::default()
            },
        ];
        let all: OpCounts = parts.iter().copied().sum();
        // Reduce in a different grouping (as parallel workers would).
        let mut regrouped = parts[2].merged(parts[0]);
        regrouped += parts[1];
        assert_eq!(all, regrouped);
        assert_eq!(all.total(), 19);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!OpCounts::default().to_string().is_empty());
    }

    #[test]
    fn delta_subtracts_and_saturates() {
        let before = OpCounts {
            shifts: 10,
            int_adds: 4,
            ..OpCounts::default()
        };
        let after = OpCounts {
            shifts: 25,
            int_adds: 4,
            int_mults: 7,
            ..OpCounts::default()
        };
        let d = after.delta(before);
        assert_eq!(d.shifts, 15);
        assert_eq!(d.int_adds, 0);
        assert_eq!(d.int_mults, 7);
        // A stale (larger) snapshot saturates to zero instead of wrapping.
        assert_eq!(before.delta(after).shifts, 0);
        assert_eq!(
            d.fields().iter().filter(|(_, n)| *n > 0).count(),
            2,
            "only the changed fields are nonzero"
        );
    }
}
