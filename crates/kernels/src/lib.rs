//! Multiplier-free integer inference kernels.
//!
//! The paper's hardware claim is that a LightNN/FLightNN multiplication
//! is `k` barrel shifts and `k−1` adds instead of a fixed-point multiply.
//! This crate implements both arithmetic styles *in software, over actual
//! integers*, so the claim can be exercised end-to-end:
//!
//! * [`qact`] — 8-bit activation quantization into integer planes,
//! * [`fixed`] — fixed-point convolution with true integer multiplies
//!   (the FP 4W8A baseline's datapath),
//! * [`shift`] — shift-add convolution driven by the
//!   [`ShiftPlan`](flightnn::convert::ShiftPlan) of a quantized layer
//!   (the (F)LightNN datapath),
//! * [`counts`] — operation counting shared with the ASIC energy model
//!   (see [`OpCounts`] for the exact per-datapath conventions),
//! * [`engine`] — whole-network integer inference: compile a trained
//!   `QuantNet` with [`IntNetwork::compile_with`] into a multiplier-free
//!   deployment pipeline, configured by a [`CompileOptions`] builder
//!   (batch-norm folding, telemetry, sequential vs parallel
//!   [`ExecutionPolicy`]). The batched parallel executor splits a batch
//!   across crossbeam scoped threads with per-worker scratch arenas and
//!   produces logits bit-identical to the sequential path, because
//!   activations are quantized with one scale per image.
//!
//! Both integer datapaths run **lowered tap programs**: the interpreted
//! per-tap loop is compiled once per layer geometry into precomputed
//! flat input offsets (shift/sign packed into one `u32` per tap for the
//! shift path), the output map is split into a branchless interior and a
//! checked border (the `lower` module), and op accounting is hoisted out
//! of the loops entirely. The interpreted loops are retained as
//! [`shift_add_conv_reference`] / [`fixed_point_conv_reference`] — the
//! parity oracles (bit-identical logits *and* counts, enforced by
//! proptests) and the baselines of the `lowering` bench exhibit.
//!
//! Both kernels are validated bit-for-bit against the floating-point
//! reference convolution of the same quantized values.

pub mod counts;
pub mod engine;
mod exec;
pub mod fixed;
mod lower;
pub mod qact;
pub mod shift;
pub mod simd;

pub use counts::OpCounts;
pub use engine::{CompileOptions, CompiledNet, ExecCtx, ExecutionPolicy, IntNetwork};
pub use fixed::{fixed_point_conv, fixed_point_conv_reference, fixed_point_conv_with_path};
pub use qact::QuantActivations;
pub use shift::{
    shift_add_conv, shift_add_conv_reference, shift_add_conv_with_path, LoweringStats,
    ShiftCompileError, ShiftKernel,
};
pub use simd::{active_path, cpu_features, CpuFeatures, KernelPath, FORCE_SCALAR_ENV, LANES};
