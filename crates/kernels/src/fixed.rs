//! Fixed-point convolution with true integer multiplies.

use flight_tensor::{Conv2dGeometry, Tensor};

use crate::counts::OpCounts;
use crate::qact::QuantActivations;

/// Fixed-point weights: integer codes plus one per-layer scale,
/// `w ≈ codes · scale`, codes in `±(2^{bits−1} − 1)`.
#[derive(Debug, Clone, PartialEq)]
pub struct FixedWeights {
    codes: Vec<i32>,
    scale: f32,
    dims: Vec<usize>,
}

impl FixedWeights {
    /// Quantizes float weights symmetrically to `bits`.
    ///
    /// # Panics
    ///
    /// Panics if `bits < 2` or `weights` is not rank 4.
    pub fn quantize(weights: &Tensor, bits: u32) -> Self {
        assert!(bits >= 2, "fixed point needs at least 2 bits");
        assert_eq!(weights.shape().rank(), 4, "weights must be [f, c, k, k]");
        let qmax = ((1u32 << (bits - 1)) - 1) as f32;
        let max = weights.abs_max();
        let scale = if max == 0.0 { 1.0 } else { max / qmax };
        FixedWeights {
            codes: weights
                .as_slice()
                .iter()
                .map(|&w| (w / scale).round().clamp(-qmax, qmax) as i32)
                .collect(),
            scale,
            dims: weights.dims().to_vec(),
        }
    }

    /// The float weights these codes represent.
    pub fn dequantize(&self) -> Tensor {
        Tensor::from_vec(
            self.codes.iter().map(|&c| c as f32 * self.scale).collect(),
            &self.dims,
        )
    }

    /// Weight tensor dims `[f, c, k, k]`.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }
}

/// Integer fixed-point convolution: activations `[n, c, h, w]` (integer
/// codes) convolved with integer weight codes, accumulated in `i64`, then
/// rescaled to float by `act.scale · weights.scale`.
///
/// Returns the float output `[n, f, oh, ow]` and the operation counts
/// (one integer multiply and one accumulate per tap).
///
/// # Panics
///
/// Panics on shape mismatches between activations and weights.
pub fn fixed_point_conv(
    act: &QuantActivations,
    weights: &FixedWeights,
    stride: usize,
    padding: usize,
) -> (Tensor, OpCounts) {
    let ad = act.dims();
    assert_eq!(ad.len(), 4, "activations must be [n, c, h, w]");
    let (n, c, h, w) = (ad[0], ad[1], ad[2], ad[3]);
    let geom = Conv2dGeometry::new(c, h, w, weights.dims[2], stride, padding);
    let mut out = Tensor::zeros(&[n, weights.dims[0], geom.out_h, geom.out_w]);
    let scales = vec![act.scale(); n];
    let mut counts = OpCounts::default();
    fixed_point_conv_core(
        act.codes(),
        &scales,
        &geom,
        weights,
        out.as_mut_slice(),
        &mut counts,
    );
    (out, counts)
}

/// Fixed-point convolution over raw integer codes with one scale per
/// image — the per-worker scratch entry point of the batched execution
/// engine (see `shift_add_conv_core` in `shift.rs` for the layout
/// contract, which is identical).
pub(crate) fn fixed_point_conv_core(
    codes: &[i32],
    scales: &[f32],
    geom: &Conv2dGeometry,
    weights: &FixedWeights,
    out: &mut [f32],
    counts: &mut OpCounts,
) {
    let n = scales.len();
    let (c, h, w) = (geom.in_channels, geom.in_h, geom.in_w);
    let wd = &weights.dims;
    let (f, wc, kh, kw) = (wd[0], wd[1], wd[2], wd[3]);
    assert_eq!(kh, kw, "kernels must be square");
    assert_eq!(wc, c, "weight channels {wc} != activation channels {c}");
    assert_eq!(kh, geom.kernel, "geometry/kernel size mismatch");
    assert_eq!(codes.len(), n * c * h * w, "codes length mismatch");
    assert_eq!(
        out.len(),
        n * f * geom.out_positions(),
        "output length mismatch"
    );
    let (stride, padding) = (geom.stride, geom.padding);
    let wcodes = &weights.codes;

    for b in 0..n {
        let out_scale = scales[b] * weights.scale;
        for fi in 0..f {
            for oi in 0..geom.out_h {
                let row = ((b * f + fi) * geom.out_h + oi) * geom.out_w;
                for oj in 0..geom.out_w {
                    let mut acc: i64 = 0;
                    for ch in 0..c {
                        for ki in 0..kh {
                            let ii = (oi * stride + ki) as isize - padding as isize;
                            if ii < 0 || ii as usize >= h {
                                continue;
                            }
                            for kj in 0..kw {
                                let jj = (oj * stride + kj) as isize - padding as isize;
                                if jj < 0 || jj as usize >= w {
                                    continue;
                                }
                                let a = codes[((b * c + ch) * h + ii as usize) * w + jj as usize];
                                let wv = wcodes[((fi * c + ch) * kh + ki) * kw + kj];
                                acc += (a as i64) * (wv as i64);
                                counts.int_mults += 1;
                                counts.int_adds += 1;
                            }
                        }
                    }
                    out[row + oj] = acc as f32 * out_scale;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flight_nn::layers::functional::conv2d_forward;
    use flight_tensor::{uniform, TensorRng};

    #[test]
    fn integer_conv_matches_float_reference() {
        let mut rng = TensorRng::seed(5);
        let x = uniform(&mut rng, &[2, 3, 6, 6], -1.0, 1.0);
        let w = uniform(&mut rng, &[4, 3, 3, 3], -0.5, 0.5);

        let qa = QuantActivations::quantize(&x, 8);
        let qw = FixedWeights::quantize(&w, 4);

        // Reference: float conv of the dequantized values.
        let (reference, _) = conv2d_forward(
            &qa.dequantize(),
            &qw.dequantize(),
            &Tensor::zeros(&[4]),
            1,
            1,
            false,
        );
        let (out, counts) = fixed_point_conv(&qa, &qw, 1, 1);
        assert!(
            out.allclose(&reference, 1e-4),
            "integer and float paths diverge"
        );
        assert!(counts.int_mults > 0);
        assert_eq!(counts.int_mults, counts.int_adds);
    }

    #[test]
    fn stride_and_padding_variants_match() {
        let mut rng = TensorRng::seed(6);
        for &(s, p) in &[(1usize, 0usize), (2, 1), (1, 1)] {
            let x = uniform(&mut rng, &[1, 2, 7, 7], -1.0, 1.0);
            let w = uniform(&mut rng, &[3, 2, 3, 3], -0.5, 0.5);
            let qa = QuantActivations::quantize(&x, 8);
            let qw = FixedWeights::quantize(&w, 4);
            let (reference, _) = conv2d_forward(
                &qa.dequantize(),
                &qw.dequantize(),
                &Tensor::zeros(&[3]),
                s,
                p,
                false,
            );
            let (out, _) = fixed_point_conv(&qa, &qw, s, p);
            assert!(out.allclose(&reference, 1e-4), "s={s} p={p}");
        }
    }

    #[test]
    fn weight_codes_respect_bit_width() {
        let mut rng = TensorRng::seed(7);
        let w = uniform(&mut rng, &[2, 2, 3, 3], -1.0, 1.0);
        let qw = FixedWeights::quantize(&w, 4);
        assert!(qw.codes.iter().all(|&c| c.abs() <= 7));
    }
}
