//! Fixed-point convolution with true integer multiplies.
//!
//! Like the shift-add path (`shift.rs`), the interpreted tap loop is
//! lowered once per [`Conv2dGeometry`] into a static schedule: per-tap
//! flat input offsets precomputed in `(channel, row, column)` order, the
//! output map split into a branchless interior and a checked border, and
//! op accounting hoisted out of the loops (interior analytic, border
//! from a one-time dry run). The interpreted loop is retained as
//! [`fixed_point_conv_reference`] — the parity oracle and bench
//! baseline. The fixed-point cost convention is unchanged: one integer
//! multiply and one accumulate per executed tap (see [`OpCounts`]).

use std::sync::{Arc, Mutex};

use flight_tensor::{Conv2dGeometry, Tensor};

use crate::counts::OpCounts;
use crate::lower::{for_each_border_position, interior_rect, InteriorRect};
use crate::qact::QuantActivations;
use crate::shift::LoweringStats;
use crate::simd::{
    active_path, pack_lane_block, run_fixed_rect, BlockGeom, KernelPath, LaneCtx, LANES,
};

type LoweredCache = Arc<Mutex<Vec<(Conv2dGeometry, Arc<LoweredFixed>)>>>;

/// Fixed-point weights: integer codes plus one per-layer scale,
/// `w ≈ codes · scale`, codes in `±(2^{bits−1} − 1)`.
#[derive(Debug, Clone)]
pub struct FixedWeights {
    codes: Vec<i32>,
    scale: f32,
    dims: Vec<usize>,
    /// Geometry-keyed lowered programs, shared across clones (and
    /// therefore across the parallel engine's workers).
    lowered: LoweredCache,
}

// The lowering cache is derived state; equality is about the weights.
impl PartialEq for FixedWeights {
    fn eq(&self, other: &Self) -> bool {
        self.codes == other.codes && self.scale == other.scale && self.dims == other.dims
    }
}

impl FixedWeights {
    /// Quantizes float weights symmetrically to `bits`.
    ///
    /// # Panics
    ///
    /// Panics if `bits < 2` or `weights` is not rank 4.
    pub fn quantize(weights: &Tensor, bits: u32) -> Self {
        assert!(bits >= 2, "fixed point needs at least 2 bits");
        assert_eq!(weights.shape().rank(), 4, "weights must be [f, c, k, k]");
        let qmax = ((1u32 << (bits - 1)) - 1) as f32;
        let max = weights.abs_max();
        let scale = if max == 0.0 { 1.0 } else { max / qmax };
        FixedWeights {
            codes: weights
                .as_slice()
                .iter()
                .map(|&w| (w / scale).round().clamp(-qmax, qmax) as i32)
                .collect(),
            scale,
            dims: weights.dims().to_vec(),
            lowered: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// The float weights these codes represent.
    pub fn dequantize(&self) -> Tensor {
        Tensor::from_vec(
            self.codes.iter().map(|&c| c as f32 * self.scale).collect(),
            &self.dims,
        )
    }

    /// Weight tensor dims `[f, c, k, k]`.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// The interior/border decomposition these weights use for `geom`
    /// (forces the lowering, which is cached). For the dense fixed-point
    /// path every filter has `c · k · k` taps.
    pub fn lowering_stats(&self, geom: &Conv2dGeometry) -> LoweringStats {
        let lowered = self.lowered(geom);
        let (f, c, kh, kw) = (self.dims[0], self.dims[1], self.dims[2], self.dims[3]);
        LoweringStats {
            interior_positions: lowered.interior_positions,
            border_positions: lowered.border_positions,
            total_taps: f * c * kh * kw,
            filters: f,
        }
    }

    /// The lowered program for `geom`, building and caching it on first
    /// use.
    fn lowered(&self, geom: &Conv2dGeometry) -> Arc<LoweredFixed> {
        let mut cache = self.lowered.lock().expect("lowering cache poisoned");
        if let Some((_, program)) = cache.iter().find(|(g, _)| g == geom) {
            return program.clone();
        }
        let program = Arc::new(LoweredFixed::build(self, geom));
        cache.push((*geom, program.clone()));
        program
    }
}

/// One dense tap on the checked border path: channel plane base plus the
/// tap's kernel-window deltas (the position loop folds padding into its
/// window origin).
#[derive(Debug, Clone, Copy)]
struct BorderTap {
    /// `ch · h · w` — flat base of the tap's input channel plane.
    plane: u32,
    /// Kernel row `ki`.
    di: i32,
    /// Kernel column `kj`.
    dj: i32,
}

/// [`FixedWeights`] lowered against one concrete geometry.
#[derive(Debug)]
struct LoweredFixed {
    rect: InteriorRect,
    /// Per tap of one filter volume (`c · k · k` entries, in weight
    /// order): flat input offset relative to the window origin.
    offsets: Vec<u32>,
    /// Per tap: checked-path decoding (parallel to `offsets`).
    border: Vec<BorderTap>,
    /// Per-image op totals; the fixed convention is one multiply and one
    /// add per executed tap, so the two counts are equal.
    macs_per_image: u64,
    interior_positions: usize,
    border_positions: usize,
    /// Worst-case per-filter magnitude multiplier `max_f Σ_taps |w|`: an
    /// interior accumulator is bounded by `max |code| · lane_weight`,
    /// which must fit i32 for the lane path to match the scalar i64
    /// accumulation bit-for-bit.
    lane_weight: u64,
}

impl LoweredFixed {
    fn build(weights: &FixedWeights, geom: &Conv2dGeometry) -> LoweredFixed {
        let (h, w) = (geom.in_h, geom.in_w);
        let (f, c, kh, kw) = (
            weights.dims[0],
            weights.dims[1],
            weights.dims[2],
            weights.dims[3],
        );
        debug_assert_eq!(kh, geom.kernel, "geometry/kernel size mismatch");
        assert!(
            geom.in_channels * h * w <= u32::MAX as usize,
            "input volume too large for lowered offsets"
        );
        let p = geom.padding as i32;
        let rect = interior_rect(geom);

        // Unlike the sparse shift taps, the fixed filter volume is dense:
        // offsets are the same for every filter, in weight-code order.
        let mut offsets = Vec::with_capacity(c * kh * kw);
        let mut border = Vec::with_capacity(c * kh * kw);
        for ch in 0..c {
            for ki in 0..kh {
                for kj in 0..kw {
                    offsets.push((ch * h * w + ki * w + kj) as u32);
                    border.push(BorderTap {
                        plane: (ch * h * w) as u32,
                        di: ki as i32,
                        dj: kj as i32,
                    });
                }
            }
        }

        // Interior accounting is analytic; border is a one-time dry run
        // of the checked path. Executed taps are filter-independent, so
        // count once per position and multiply by `f`.
        let interior_positions = rect.positions();
        let mut macs = (f * c * kh * kw * interior_positions) as u64;
        let mut border_positions = 0usize;
        for_each_border_position(geom, &rect, |oi, oj| {
            border_positions += 1;
            let ii0 = (oi * geom.stride) as i32 - p;
            let jj0 = (oj * geom.stride) as i32 - p;
            let executed = border
                .iter()
                .filter(|bt| {
                    let ii = ii0 + bt.di;
                    let jj = jj0 + bt.dj;
                    (0..h as i32).contains(&ii) && (0..w as i32).contains(&jj)
                })
                .count() as u64;
            macs += executed * f as u64;
        });

        // Lane-eligibility bound: the largest per-filter Σ|w| (see the
        // field docs). The i32 lane multiply itself cannot wrap either
        // under the same bound, since every partial product is ≤ the
        // accumulator bound.
        let ckk = c * kh * kw;
        let mut lane_weight = 0u64;
        for fi in 0..f {
            let filter_weight: u64 = weights.codes[fi * ckk..(fi + 1) * ckk]
                .iter()
                .map(|wv| wv.unsigned_abs() as u64)
                .sum();
            lane_weight = lane_weight.max(filter_weight);
        }

        LoweredFixed {
            rect,
            offsets,
            border,
            macs_per_image: macs,
            interior_positions,
            border_positions,
            lane_weight,
        }
    }

    /// The path this call actually runs (see `LoweredShift::lane_path`):
    /// the requested lane path only when the batch fills a lane block,
    /// the interior is nonempty, and i32 lane accumulation provably
    /// cannot wrap; [`KernelPath::Scalar`] otherwise.
    fn lane_path(&self, requested: KernelPath, codes: &[i32], n: usize) -> KernelPath {
        if requested == KernelPath::Scalar || n < LANES || self.interior_positions == 0 {
            return KernelPath::Scalar;
        }
        let max_abs = codes
            .iter()
            .map(|c| c.unsigned_abs() as u64)
            .max()
            .unwrap_or(0);
        if max_abs.saturating_mul(self.lane_weight) > i32::MAX as u64 {
            return KernelPath::Scalar;
        }
        requested
    }

    /// Executes the lowered program: lane-blocked SIMD interior where
    /// eligible (full blocks of [`LANES`] images), scalar interior MACs
    /// otherwise, checked scalar border always. Writes outputs only —
    /// accounting is precomputed and dispatch-invariant.
    fn run(
        &self,
        weights: &FixedWeights,
        codes_in: &[i32],
        scales: &[f32],
        geom: &Conv2dGeometry,
        out: &mut [f32],
        lanes: &mut LaneCtx,
    ) {
        let n = scales.len();
        let path = self.lane_path(lanes.path(), codes_in, n);
        let lane_images = if path == KernelPath::Scalar {
            0
        } else {
            n - n % LANES
        };

        if lane_images > 0 {
            let chw = geom.in_channels * geom.in_h * geom.in_w;
            let (f, ckk) = (weights.dims[0], self.offsets.len());
            let img_stride = f * geom.out_h * geom.out_w;
            let g = BlockGeom {
                rect: self.rect,
                stride: geom.stride,
                padding: geom.padding,
                in_w: geom.in_w,
                out_w: geom.out_w,
            };
            for b0 in (0..lane_images).step_by(LANES) {
                pack_lane_block(
                    &codes_in[b0 * chw..(b0 + LANES) * chw],
                    chw,
                    &mut lanes.block,
                );
                let mut out_scales = [0f32; LANES];
                for (l, slot) in out_scales.iter_mut().enumerate() {
                    *slot = scales[b0 + l] * weights.scale;
                }
                for fi in 0..f {
                    run_fixed_rect(
                        path,
                        &lanes.block,
                        &self.offsets,
                        &weights.codes[fi * ckk..(fi + 1) * ckk],
                        &g,
                        out,
                        (b0 * f + fi) * geom.out_h * geom.out_w,
                        img_stride,
                        &out_scales,
                    );
                }
            }
            // The border ring of the lane-covered images stays scalar.
            self.run_scalar(weights, codes_in, scales, geom, out, 0..lane_images, false);
        }

        // Remnant images (or the whole batch when the lane path is off)
        // run the per-image scalar path.
        self.run_scalar(weights, codes_in, scales, geom, out, lane_images..n, true);
    }

    /// The per-image scalar path over a range of images: i64-accumulated
    /// interior (when `include_interior`) plus the checked border.
    #[allow(clippy::too_many_arguments)]
    fn run_scalar(
        &self,
        weights: &FixedWeights,
        codes_in: &[i32],
        scales: &[f32],
        geom: &Conv2dGeometry,
        out: &mut [f32],
        images: std::ops::Range<usize>,
        include_interior: bool,
    ) {
        let (c, h, w) = (geom.in_channels, geom.in_h, geom.in_w);
        let chw = c * h * w;
        let (stride, padding) = (geom.stride, geom.padding);
        let (f, ckk) = (weights.dims[0], self.offsets.len());
        let (out_h, out_w) = (geom.out_h, geom.out_w);
        let rect = self.rect;
        let wcodes = &weights.codes;

        for b in images {
            let out_scale = scales[b] * weights.scale;
            let img = &codes_in[b * chw..(b + 1) * chw];
            for fi in 0..f {
                let filter = &wcodes[fi * ckk..(fi + 1) * ckk];

                // Interior: no padding branch, no index decode, no
                // per-tap accounting — load, multiply, accumulate.
                // Skipped when a lane block already wrote these bits.
                if include_interior {
                    for oi in rect.oi_lo..rect.oi_hi {
                        let out_row = ((b * f + fi) * out_h + oi) * out_w;
                        let in_row = (oi * stride - padding) * w;
                        for oj in rect.oj_lo..rect.oj_hi {
                            let base = in_row + oj * stride - padding;
                            let mut acc: i64 = 0;
                            for (&o, &wv) in self.offsets.iter().zip(filter) {
                                acc += img[base + o as usize] as i64 * wv as i64;
                            }
                            out[out_row + oj] = acc as f32 * out_scale;
                        }
                    }
                }

                // Border: the checked path, on the thin frame only.
                for_each_border_position(geom, &rect, |oi, oj| {
                    let ii0 = (oi * stride) as i32 - padding as i32;
                    let jj0 = (oj * stride) as i32 - padding as i32;
                    let mut acc: i64 = 0;
                    for (bt, &wv) in self.border.iter().zip(filter) {
                        let ii = ii0 + bt.di;
                        let jj = jj0 + bt.dj;
                        if (0..h as i32).contains(&ii) && (0..w as i32).contains(&jj) {
                            let a = img[bt.plane as usize + ii as usize * w + jj as usize];
                            acc += a as i64 * wv as i64;
                        }
                    }
                    out[((b * f + fi) * out_h + oi) * out_w + oj] = acc as f32 * out_scale;
                });
            }
        }
    }
}

/// Integer fixed-point convolution: activations `[n, c, h, w]` (integer
/// codes) convolved with integer weight codes, accumulated in `i64`, then
/// rescaled to float by `act.scale · weights.scale`.
///
/// Returns the float output `[n, f, oh, ow]` and the operation counts
/// (one integer multiply and one accumulate per tap).
///
/// # Panics
///
/// Panics on shape mismatches between activations and weights.
pub fn fixed_point_conv(
    act: &QuantActivations,
    weights: &FixedWeights,
    stride: usize,
    padding: usize,
) -> (Tensor, OpCounts) {
    fixed_point_conv_with_path(act, weights, stride, padding, active_path())
}

/// [`fixed_point_conv`] pinned to a specific [`KernelPath`] instead of
/// the process-wide dispatch decision — the entry point of the
/// path-matrix parity tests and the `lowering` bench exhibit.
pub fn fixed_point_conv_with_path(
    act: &QuantActivations,
    weights: &FixedWeights,
    stride: usize,
    padding: usize,
    path: KernelPath,
) -> (Tensor, OpCounts) {
    fixed_point_conv_with(
        act,
        weights,
        stride,
        padding,
        fixed_point_conv_core,
        LaneCtx::with_path(path),
    )
}

/// [`fixed_point_conv`] on the retained interpreted core — the oracle the
/// lowered path is tested against, and the fixed-point baseline of the
/// `lowering` bench exhibit. Bit-identical outputs and counts to the
/// lowered path.
pub fn fixed_point_conv_reference(
    act: &QuantActivations,
    weights: &FixedWeights,
    stride: usize,
    padding: usize,
) -> (Tensor, OpCounts) {
    fixed_point_conv_with(
        act,
        weights,
        stride,
        padding,
        fixed_point_conv_reference_core,
        LaneCtx::with_path(KernelPath::Scalar),
    )
}

type FixedCore =
    fn(&[i32], &[f32], &Conv2dGeometry, &FixedWeights, &mut [f32], &mut OpCounts, &mut LaneCtx);

fn fixed_point_conv_with(
    act: &QuantActivations,
    weights: &FixedWeights,
    stride: usize,
    padding: usize,
    core: FixedCore,
    mut lanes: LaneCtx,
) -> (Tensor, OpCounts) {
    let ad = act.dims();
    assert_eq!(ad.len(), 4, "activations must be [n, c, h, w]");
    let (n, c, h, w) = (ad[0], ad[1], ad[2], ad[3]);
    let geom = Conv2dGeometry::new(c, h, w, weights.dims[2], stride, padding);
    let mut out = Tensor::zeros(&[n, weights.dims[0], geom.out_h, geom.out_w]);
    let scales = vec![act.scale(); n];
    let mut counts = OpCounts::default();
    core(
        act.codes(),
        &scales,
        &geom,
        weights,
        out.as_mut_slice(),
        &mut counts,
        &mut lanes,
    );
    (out, counts)
}

/// Validates the shared layout contract of the conv cores (see
/// `shift_add_conv_core` in `shift.rs`, which is identical).
fn check_core_shapes(
    codes: &[i32],
    scales: &[f32],
    geom: &Conv2dGeometry,
    weights: &FixedWeights,
    out: &[f32],
) {
    let n = scales.len();
    let (c, h, w) = (geom.in_channels, geom.in_h, geom.in_w);
    let wd = &weights.dims;
    let (f, wc, kh, kw) = (wd[0], wd[1], wd[2], wd[3]);
    assert_eq!(kh, kw, "kernels must be square");
    assert_eq!(wc, c, "weight channels {wc} != activation channels {c}");
    assert_eq!(kh, geom.kernel, "geometry/kernel size mismatch");
    assert_eq!(codes.len(), n * c * h * w, "codes length mismatch");
    assert_eq!(
        out.len(),
        n * f * geom.out_positions(),
        "output length mismatch"
    );
}

/// Fixed-point convolution over raw integer codes with one scale per
/// image — the per-worker scratch entry point of the batched execution
/// engine (lowered path).
pub(crate) fn fixed_point_conv_core(
    codes: &[i32],
    scales: &[f32],
    geom: &Conv2dGeometry,
    weights: &FixedWeights,
    out: &mut [f32],
    counts: &mut OpCounts,
    lanes: &mut LaneCtx,
) {
    check_core_shapes(codes, scales, geom, weights, out);
    let lowered = weights.lowered(geom);
    lowered.run(weights, codes, scales, geom, out, lanes);
    let n = scales.len() as u64;
    counts.int_mults += n * lowered.macs_per_image;
    counts.int_adds += n * lowered.macs_per_image;
}

/// The interpreted tap loop the lowered core replaced: per-tap bounds
/// checks and per-tap count bumps. Retained as the parity oracle.
pub(crate) fn fixed_point_conv_reference_core(
    codes: &[i32],
    scales: &[f32],
    geom: &Conv2dGeometry,
    weights: &FixedWeights,
    out: &mut [f32],
    counts: &mut OpCounts,
    _lanes: &mut LaneCtx,
) {
    check_core_shapes(codes, scales, geom, weights, out);
    let n = scales.len();
    let (c, h, w) = (geom.in_channels, geom.in_h, geom.in_w);
    let wd = &weights.dims;
    let (f, kh, kw) = (wd[0], wd[2], wd[3]);
    let (stride, padding) = (geom.stride, geom.padding);
    let wcodes = &weights.codes;

    for b in 0..n {
        let out_scale = scales[b] * weights.scale;
        for fi in 0..f {
            for oi in 0..geom.out_h {
                let row = ((b * f + fi) * geom.out_h + oi) * geom.out_w;
                for oj in 0..geom.out_w {
                    let mut acc: i64 = 0;
                    for ch in 0..c {
                        for ki in 0..kh {
                            let ii = (oi * stride + ki) as isize - padding as isize;
                            if ii < 0 || ii as usize >= h {
                                continue;
                            }
                            for kj in 0..kw {
                                let jj = (oj * stride + kj) as isize - padding as isize;
                                if jj < 0 || jj as usize >= w {
                                    continue;
                                }
                                let a = codes[((b * c + ch) * h + ii as usize) * w + jj as usize];
                                let wv = wcodes[((fi * c + ch) * kh + ki) * kw + kj];
                                acc += (a as i64) * (wv as i64);
                                counts.int_mults += 1;
                                counts.int_adds += 1;
                            }
                        }
                    }
                    out[row + oj] = acc as f32 * out_scale;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flight_nn::layers::functional::conv2d_forward;
    use flight_tensor::{uniform, TensorRng};

    #[test]
    fn integer_conv_matches_float_reference() {
        let mut rng = TensorRng::seed(5);
        let x = uniform(&mut rng, &[2, 3, 6, 6], -1.0, 1.0);
        let w = uniform(&mut rng, &[4, 3, 3, 3], -0.5, 0.5);

        let qa = QuantActivations::quantize(&x, 8);
        let qw = FixedWeights::quantize(&w, 4);

        // Reference: float conv of the dequantized values.
        let (reference, _) = conv2d_forward(
            &qa.dequantize(),
            &qw.dequantize(),
            &Tensor::zeros(&[4]),
            1,
            1,
            false,
        );
        let (out, counts) = fixed_point_conv(&qa, &qw, 1, 1);
        assert!(
            out.allclose(&reference, 1e-4),
            "integer and float paths diverge"
        );
        assert!(counts.int_mults > 0);
        assert_eq!(counts.int_mults, counts.int_adds);

        // The lowered path and the interpreted oracle are bit-identical.
        let (oracle, oracle_counts) = fixed_point_conv_reference(&qa, &qw, 1, 1);
        assert_eq!(out.as_slice(), oracle.as_slice(), "lowered != oracle");
        assert_eq!(counts, oracle_counts, "lowered counts != oracle counts");
    }

    #[test]
    fn stride_and_padding_variants_match() {
        let mut rng = TensorRng::seed(6);
        for &(s, p) in &[(1usize, 0usize), (2, 1), (1, 1)] {
            let x = uniform(&mut rng, &[1, 2, 7, 7], -1.0, 1.0);
            let w = uniform(&mut rng, &[3, 2, 3, 3], -0.5, 0.5);
            let qa = QuantActivations::quantize(&x, 8);
            let qw = FixedWeights::quantize(&w, 4);
            let (reference, _) = conv2d_forward(
                &qa.dequantize(),
                &qw.dequantize(),
                &Tensor::zeros(&[3]),
                s,
                p,
                false,
            );
            let (out, counts) = fixed_point_conv(&qa, &qw, s, p);
            assert!(out.allclose(&reference, 1e-4), "s={s} p={p}");

            let (oracle, oracle_counts) = fixed_point_conv_reference(&qa, &qw, s, p);
            assert_eq!(
                out.as_slice(),
                oracle.as_slice(),
                "s={s} p={p}: lowered != oracle"
            );
            assert_eq!(counts, oracle_counts, "s={s} p={p}: counts diverge");
        }
    }

    #[test]
    fn weight_codes_respect_bit_width() {
        let mut rng = TensorRng::seed(7);
        let w = uniform(&mut rng, &[2, 2, 3, 3], -1.0, 1.0);
        let qw = FixedWeights::quantize(&w, 4);
        assert!(qw.codes.iter().all(|&c| c.abs() <= 7));
    }

    #[test]
    fn lowering_stats_count_dense_taps() {
        let mut rng = TensorRng::seed(8);
        let w = uniform(&mut rng, &[2, 3, 3, 3], -1.0, 1.0);
        let qw = FixedWeights::quantize(&w, 4);
        let geom = Conv2dGeometry::new(3, 8, 8, 3, 1, 1);
        let stats = qw.lowering_stats(&geom);
        assert_eq!(stats.total_taps, 2 * 3 * 3 * 3);
        assert_eq!(stats.filters, 2);
        assert_eq!(
            stats.interior_positions + stats.border_positions,
            geom.out_positions()
        );
    }
}
