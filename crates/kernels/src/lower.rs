//! Shared geometry machinery for lowered conv kernels.
//!
//! Both integer datapaths (shift-add and fixed-point) are lowered from an
//! interpreted per-tap loop to a static schedule split by *where the
//! receptive field lands*:
//!
//! * the **interior** — output positions whose full `k × k` window is
//!   inside the input, so no tap can be clipped by padding and the inner
//!   loop needs no bounds checks and no per-tap bookkeeping;
//! * the **border** — the thin frame of remaining positions, which keeps
//!   the checked path.
//!
//! The split depends only on the [`Conv2dGeometry`], not on the tap
//! pattern (a conservative rectangle: a border position may still have
//! every tap in bounds), which is what makes interior op counting purely
//! analytic (`taps × positions`) and border counting a one-time
//! per-geometry dry run.

use flight_tensor::Conv2dGeometry;

/// The half-open interior rectangle `[oi_lo, oi_hi) × [oj_lo, oj_hi)` of
/// output positions whose entire kernel window lies inside the input.
/// Empty rectangles are normalized to `hi == lo`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct InteriorRect {
    pub oi_lo: usize,
    pub oi_hi: usize,
    pub oj_lo: usize,
    pub oj_hi: usize,
}

impl InteriorRect {
    /// Number of interior output positions.
    pub fn positions(&self) -> usize {
        (self.oi_hi - self.oi_lo) * (self.oj_hi - self.oj_lo)
    }

    /// Whether `(oi, oj)` lies in the interior.
    #[cfg(test)]
    pub fn contains(&self, oi: usize, oj: usize) -> bool {
        (self.oi_lo..self.oi_hi).contains(&oi) && (self.oj_lo..self.oj_hi).contains(&oj)
    }
}

/// One axis of the interior: the output coordinates `o` with
/// `0 <= o·stride − padding` and `o·stride + k − 1 − padding < dim`.
fn interior_axis(
    dim: usize,
    k: usize,
    stride: usize,
    padding: usize,
    out: usize,
) -> (usize, usize) {
    let lo = padding.div_ceil(stride).min(out);
    let hi = if dim + padding >= k {
        ((dim + padding - k) / stride + 1).min(out)
    } else {
        0
    };
    (lo, hi.max(lo))
}

/// Computes the interior rectangle of `geom`.
pub(crate) fn interior_rect(geom: &Conv2dGeometry) -> InteriorRect {
    let (oi_lo, oi_hi) = interior_axis(
        geom.in_h,
        geom.kernel,
        geom.stride,
        geom.padding,
        geom.out_h,
    );
    let (oj_lo, oj_hi) = interior_axis(
        geom.in_w,
        geom.kernel,
        geom.stride,
        geom.padding,
        geom.out_w,
    );
    InteriorRect {
        oi_lo,
        oi_hi,
        oj_lo,
        oj_hi,
    }
}

/// Visits every output position *outside* `rect` exactly once, row-major:
/// the full rows above and below the interior band, plus the left/right
/// column strips of the interior rows.
pub(crate) fn for_each_border_position(
    geom: &Conv2dGeometry,
    rect: &InteriorRect,
    mut visit: impl FnMut(usize, usize),
) {
    for oi in 0..geom.out_h {
        if (rect.oi_lo..rect.oi_hi).contains(&oi) {
            for oj in 0..rect.oj_lo {
                visit(oi, oj);
            }
            for oj in rect.oj_hi..geom.out_w {
                visit(oi, oj);
            }
        } else {
            for oj in 0..geom.out_w {
                visit(oi, oj);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geoms() -> Vec<Conv2dGeometry> {
        let mut out = Vec::new();
        for k in [1usize, 3, 5] {
            for stride in [1usize, 2] {
                for padding in [0usize, 1, 2] {
                    for (h, w) in [(5usize, 7usize), (7, 5), (9, 9), (6, 11)] {
                        if h + 2 * padding >= k && w + 2 * padding >= k {
                            out.push(Conv2dGeometry::new(2, h, w, k, stride, padding));
                        }
                    }
                }
            }
        }
        out
    }

    /// Brute-force interior definition: every (ki, kj) tap in bounds.
    fn is_interior(geom: &Conv2dGeometry, oi: usize, oj: usize) -> bool {
        let k = geom.kernel;
        (0..k).all(|ki| {
            let ii = (oi * geom.stride + ki) as isize - geom.padding as isize;
            ii >= 0 && (ii as usize) < geom.in_h
        }) && (0..k).all(|kj| {
            let jj = (oj * geom.stride + kj) as isize - geom.padding as isize;
            jj >= 0 && (jj as usize) < geom.in_w
        })
    }

    #[test]
    fn rect_matches_bruteforce_interior() {
        for geom in geoms() {
            let rect = interior_rect(&geom);
            for oi in 0..geom.out_h {
                for oj in 0..geom.out_w {
                    assert_eq!(
                        rect.contains(oi, oj),
                        is_interior(&geom, oi, oj),
                        "geom {geom:?} position ({oi},{oj})"
                    );
                }
            }
        }
    }

    #[test]
    fn border_iteration_is_the_exact_complement() {
        for geom in geoms() {
            let rect = interior_rect(&geom);
            let mut seen = vec![false; geom.out_positions()];
            let mut border = 0usize;
            for_each_border_position(&geom, &rect, |oi, oj| {
                let idx = oi * geom.out_w + oj;
                assert!(!seen[idx], "border position ({oi},{oj}) visited twice");
                assert!(!rect.contains(oi, oj), "interior leaked into the border");
                seen[idx] = true;
                border += 1;
            });
            assert_eq!(
                border + rect.positions(),
                geom.out_positions(),
                "geom {geom:?}: split must partition the output"
            );
        }
    }

    #[test]
    fn zero_padding_stride_one_is_all_interior() {
        let geom = Conv2dGeometry::new(3, 8, 8, 3, 1, 0);
        let rect = interior_rect(&geom);
        assert_eq!(rect.positions(), geom.out_positions());
    }

    #[test]
    fn tiny_input_is_all_border() {
        // 3x3 input, 5x5 kernel, padding 1: no position has the full
        // window inside.
        let geom = Conv2dGeometry::new(1, 3, 3, 5, 1, 1);
        let rect = interior_rect(&geom);
        assert_eq!(rect.positions(), 0);
        let mut border = 0;
        for_each_border_position(&geom, &rect, |_, _| border += 1);
        assert_eq!(border, geom.out_positions());
    }
}
