//! Batched parallel execution of a compiled [`IntNetwork`]
//! (crate-internal; the public entry point is `IntNetwork::forward`).
//!
//! The batch dimension is the natural work axis: activation scales are
//! per image, so every image's integer pipeline is independent of its
//! batchmates and a contiguous chunk of images can run on its own thread
//! with no synchronization beyond the final stitch. The threading
//! pattern mirrors the crossbeam scoped-thread matmul in
//! `flight-tensor/src/ops.rs`: size the pool, hand each worker a
//! disjoint slice, join, merge.
//!
//! Each worker owns one [`Scratch`] arena, so the activation-quantization
//! buffers inside the conv kernels are allocated once per worker instead
//! of once per stage per image, and one [`OpCounts`] accumulator, merged
//! associatively after the join.
//!
//! [`IntNetwork`]: crate::IntNetwork

use std::time::Instant;

use flight_telemetry::{worker_prefix, Log2Histogram, Telemetry};
use flight_tensor::Tensor;

use crate::counts::OpCounts;
use crate::engine::{run_layers, IntLayer};
use crate::simd::{KernelPath, LaneCtx};

/// Per-worker reusable buffers for activation quantization — integer
/// codes plus one scale per image — and the lane context (dispatch
/// path plus the batch-blocked SIMD arena). Cleared and refilled by
/// every conv stage, so the backing allocations grow to the largest
/// activation plane once and are reused from then on.
#[derive(Debug, Default)]
pub(crate) struct Scratch {
    /// Integer activation codes, row-major over the whole chunk.
    pub codes: Vec<i32>,
    /// One quantization scale per image.
    pub scales: Vec<f32>,
    /// Kernel dispatch path plus the lane-major blocked arena the SIMD
    /// interior reads.
    pub lanes: LaneCtx,
}

impl Scratch {
    /// A scratch arena whose lane context is pinned to `path` (the
    /// engine resolves the path once per compile; workers inherit it).
    pub fn with_path(path: KernelPath) -> Self {
        Scratch {
            codes: Vec::new(),
            scales: Vec::new(),
            lanes: LaneCtx::with_path(path),
        }
    }
}

/// Runs `layers` over `input` (`[n, …]`, `n ≥ 2`) split into
/// `workers` contiguous image chunks on scoped threads. Returns the
/// stitched logits and the associatively merged op counts — bit-identical
/// to the sequential path because every image quantizes against its own
/// scale.
///
/// With a live sink each worker `w` emits its events through a
/// `kernel.worker.<w>.` prefixed handle: a `chunk` span, a
/// `chunk.images` gauge, one `chunk.<field>` counter per nonzero
/// op-count field, and three [`Log2Histogram`]s of per-image latency —
/// `chunk.latency.e2e` (dispatch → image done), `chunk.latency.compute`
/// (the image's own pipeline time), and `chunk.latency.queue_wait`
/// (dispatch → worker thread start, the scheduling cost every image of
/// the chunk paid). The traced path walks its chunk image by image to
/// time each one; per-image activation scales make that split
/// bit-identical to the whole-chunk run, so logits and op counts do not
/// change. The untraced path keeps the single whole-chunk call.
pub(crate) fn forward_parallel(
    layers: &[IntLayer],
    telemetry: &Telemetry,
    input: &Tensor,
    workers: usize,
    path: KernelPath,
) -> (Tensor, OpCounts) {
    let dims = input.dims();
    let n = dims[0];
    debug_assert!(workers >= 2 && workers <= n, "dispatcher sizes the pool");
    let img_len = input.len() / n;
    let per = n.div_ceil(workers);
    let chunks = n.div_ceil(per);
    let data = input.as_slice();
    let dispatch = Instant::now();

    let mut results: Vec<Option<(Tensor, OpCounts)>> = Vec::new();
    results.resize_with(chunks, || None);

    crossbeam::scope(|scope| {
        for (w, slot) in results.iter_mut().enumerate() {
            let start = w * per;
            let end = (start + per).min(n);
            let worker_telemetry = telemetry.with_prefix(&worker_prefix(w));
            let mut chunk_dims = dims.to_vec();
            chunk_dims[0] = end - start;
            scope.spawn(move |_| {
                let queue_wait = dispatch.elapsed().as_secs_f64();
                let span = worker_telemetry.span("chunk");
                let mut counts = OpCounts::default();
                let mut scratch = Scratch::with_path(path);
                let out = if worker_telemetry.enabled() {
                    let out = run_chunk_per_image(
                        layers,
                        &worker_telemetry,
                        &data[start * img_len..end * img_len],
                        &chunk_dims,
                        dispatch,
                        queue_wait,
                        &mut counts,
                        &mut scratch,
                    );
                    worker_telemetry.gauge("chunk.images", (end - start) as f64, "img");
                    for (field, ops) in counts.fields() {
                        if ops > 0 {
                            worker_telemetry.counter(&format!("chunk.{field}"), ops, "op");
                        }
                    }
                    out
                } else {
                    let chunk = Tensor::from_vec(
                        data[start * img_len..end * img_len].to_vec(),
                        &chunk_dims,
                    );
                    run_layers(layers, &worker_telemetry, &chunk, &mut counts, &mut scratch)
                };
                drop(span);
                *slot = Some((out, counts));
            });
        }
    })
    .expect("forward worker thread panicked");

    // Stitch chunk outputs back together in batch order and reduce the
    // counts. Merge order does not matter — OpCounts is associative —
    // but we keep chunk order for determinism anyway.
    stitch(results, n)
}

/// The traced chunk walk: one image at a time, recording per-image
/// latency into the worker's histograms and emitting them once at the
/// end. Stage outputs are stitched in image order, so the result equals
/// the whole-chunk run bit for bit (per-image activation scales).
#[allow(clippy::too_many_arguments)]
fn run_chunk_per_image(
    layers: &[IntLayer],
    worker_telemetry: &Telemetry,
    chunk_data: &[f32],
    chunk_dims: &[usize],
    dispatch: Instant,
    queue_wait: f64,
    counts: &mut OpCounts,
    scratch: &mut Scratch,
) -> Tensor {
    let images = chunk_dims[0];
    let img_len = chunk_data.len().checked_div(images).unwrap_or(0);
    let mut img_dims = chunk_dims.to_vec();
    img_dims[0] = 1;

    let mut e2e = Log2Histogram::new();
    let mut compute = Log2Histogram::new();
    let mut queue = Log2Histogram::new();

    let mut out_dims: Vec<usize> = Vec::new();
    let mut out_data: Vec<f32> = Vec::new();
    for i in 0..images {
        let started = Instant::now();
        let image = Tensor::from_vec(
            chunk_data[i * img_len..(i + 1) * img_len].to_vec(),
            &img_dims,
        );
        let out = run_layers(layers, worker_telemetry, &image, counts, scratch);
        compute.record(started.elapsed().as_secs_f64());
        e2e.record(dispatch.elapsed().as_secs_f64());
        queue.record(queue_wait);
        if out_dims.is_empty() {
            out_dims = out.dims().to_vec();
            out_data.reserve(out.len() * images);
        }
        out_data.extend_from_slice(out.as_slice());
    }
    worker_telemetry.log2_histogram("chunk.latency.e2e", &e2e);
    worker_telemetry.log2_histogram("chunk.latency.compute", &compute);
    worker_telemetry.log2_histogram("chunk.latency.queue_wait", &queue);

    if out_dims.is_empty() {
        return Tensor::from_vec(Vec::new(), chunk_dims);
    }
    out_dims[0] = images;
    Tensor::from_vec(out_data, &out_dims)
}

/// Concatenates per-chunk outputs in batch order and reduces the op
/// counts.
fn stitch(results: Vec<Option<(Tensor, OpCounts)>>, n: usize) -> (Tensor, OpCounts) {
    let mut merged = OpCounts::default();
    let mut out_dims: Vec<usize> = Vec::new();
    let mut out_data: Vec<f32> = Vec::new();
    for slot in results {
        let (chunk_out, counts) = slot.expect("every spawned chunk reports a result");
        if out_dims.is_empty() {
            out_dims = chunk_out.dims().to_vec();
            let chunk_n = out_dims[0].max(1);
            out_data.reserve(chunk_out.len() / chunk_n * n);
        }
        merged += counts;
        out_data.extend_from_slice(chunk_out.as_slice());
    }
    out_dims[0] = n;
    (Tensor::from_vec(out_data, &out_dims), merged)
}
