//! Batched parallel execution of a compiled [`IntNetwork`]
//! (crate-internal; the public entry point is `IntNetwork::forward`).
//!
//! The batch dimension is the natural work axis: activation scales are
//! per image, so every image's integer pipeline is independent of its
//! batchmates and a contiguous chunk of images can run on its own thread
//! with no synchronization beyond the final stitch. The threading
//! pattern mirrors the crossbeam scoped-thread matmul in
//! `flight-tensor/src/ops.rs`: size the pool, hand each worker a
//! disjoint slice, join, merge.
//!
//! Each worker owns one [`Scratch`] arena, so the activation-quantization
//! buffers inside the conv kernels are allocated once per worker instead
//! of once per stage per image, and one [`OpCounts`] accumulator, merged
//! associatively after the join.
//!
//! [`IntNetwork`]: crate::IntNetwork

use flight_telemetry::{worker_prefix, Telemetry};
use flight_tensor::Tensor;

use crate::counts::OpCounts;
use crate::engine::{run_layers, IntLayer};

/// Per-worker reusable buffers for activation quantization: integer
/// codes plus one scale per image. Cleared and refilled by every conv
/// stage, so the backing allocations grow to the largest activation
/// plane once and are reused from then on.
#[derive(Debug, Default)]
pub(crate) struct Scratch {
    /// Integer activation codes, row-major over the whole chunk.
    pub codes: Vec<i32>,
    /// One quantization scale per image.
    pub scales: Vec<f32>,
}

/// Runs `layers` over `input` (`[n, …]`, `n ≥ 2`) split into
/// `workers` contiguous image chunks on scoped threads. Returns the
/// stitched logits and the associatively merged op counts — bit-identical
/// to the sequential path because every image quantizes against its own
/// scale.
///
/// With a live sink each worker `w` emits its events through a
/// `kernel.worker.<w>.` prefixed handle: a `chunk` span, a
/// `chunk.images` gauge, and one `chunk.<field>` counter per nonzero
/// op-count field.
pub(crate) fn forward_parallel(
    layers: &[IntLayer],
    telemetry: &Telemetry,
    input: &Tensor,
    workers: usize,
) -> (Tensor, OpCounts) {
    let dims = input.dims();
    let n = dims[0];
    debug_assert!(workers >= 2 && workers <= n, "dispatcher sizes the pool");
    let img_len = input.len() / n;
    let per = n.div_ceil(workers);
    let chunks = n.div_ceil(per);
    let data = input.as_slice();

    let mut results: Vec<Option<(Tensor, OpCounts)>> = Vec::new();
    results.resize_with(chunks, || None);

    crossbeam::scope(|scope| {
        for (w, slot) in results.iter_mut().enumerate() {
            let start = w * per;
            let end = (start + per).min(n);
            let worker_telemetry = telemetry.with_prefix(&worker_prefix(w));
            let mut chunk_dims = dims.to_vec();
            chunk_dims[0] = end - start;
            scope.spawn(move |_| {
                let span = worker_telemetry.span("chunk");
                let chunk =
                    Tensor::from_vec(data[start * img_len..end * img_len].to_vec(), &chunk_dims);
                let mut counts = OpCounts::default();
                let mut scratch = Scratch::default();
                let out = run_layers(layers, &worker_telemetry, &chunk, &mut counts, &mut scratch);
                if worker_telemetry.enabled() {
                    worker_telemetry.gauge("chunk.images", (end - start) as f64, "img");
                    for (field, ops) in counts.fields() {
                        if ops > 0 {
                            worker_telemetry.counter(&format!("chunk.{field}"), ops, "op");
                        }
                    }
                }
                drop(span);
                *slot = Some((out, counts));
            });
        }
    })
    .expect("forward worker thread panicked");

    // Stitch chunk outputs back together in batch order and reduce the
    // counts. Merge order does not matter — OpCounts is associative —
    // but we keep chunk order for determinism anyway.
    let mut merged = OpCounts::default();
    let mut out_dims: Vec<usize> = Vec::new();
    let mut out_data: Vec<f32> = Vec::new();
    for slot in results {
        let (chunk_out, counts) = slot.expect("every spawned chunk reports a result");
        if out_dims.is_empty() {
            out_dims = chunk_out.dims().to_vec();
            let chunk_n = out_dims[0].max(1);
            out_data.reserve(chunk_out.len() / chunk_n * n);
        }
        merged += counts;
        out_data.extend_from_slice(chunk_out.as_slice());
    }
    out_dims[0] = n;
    (Tensor::from_vec(out_data, &out_dims), merged)
}
