//! Shift-add convolution — the (F)LightNN datapath.
//!
//! A quantized filter is a [`ShiftPlan`] (Fig. 3): each active level is a
//! subfilter whose taps are single powers of two. The kernel therefore
//! computes every multiply as `±(a << s)` over the integer activation
//! codes, accumulating in `i64`, and rescales once at the end by
//! `2^{e_min} · act_scale`.
//!
//! # Lowered tap programs
//!
//! [`ShiftKernel::compile`] decodes the plan once into a flat tap table
//! sorted by `(channel, kernel row, kernel column)` with the shift amount
//! and sign packed into a single `u32` per tap. On first contact with a
//! concrete [`Conv2dGeometry`] the kernel lowers that table into a
//! per-geometry program (cached, shared across clones and worker
//! threads):
//!
//! * every tap gets a precomputed flat input offset relative to the
//!   output position's window origin, so the hot loop is a branchless
//!   load → shift → sign-fold → accumulate with no index arithmetic;
//! * the output map splits into an **interior** (no tap can fall outside
//!   the input; the padding branch disappears) and a thin **border**
//!   that keeps the checked path (see the `lower` module);
//! * op accounting is hoisted out of the loops entirely: interior counts
//!   are `taps × positions`, computed analytically, and border counts
//!   come from a one-time per-geometry dry run — [`OpCounts`] stays
//!   bit-identical to the interpreted reference
//!   ([`shift_add_conv_reference`]), which is retained as the parity
//!   oracle and the lowering bench baseline.

use std::sync::{Arc, Mutex};

use flight_tensor::{Conv2dGeometry, Tensor};
use flightnn::convert::ShiftPlan;
use flightnn::pow2::pow2_exponent;

use crate::counts::OpCounts;
use crate::lower::{for_each_border_position, interior_rect, InteriorRect};
use crate::qact::QuantActivations;
use crate::simd::{
    active_path, pack_lane_block, run_shift_rect, BlockGeom, KernelPath, LaneCtx, LANES,
    MAX_LANE_SHIFT,
};

/// Packed tap code layout: shift amount in the low 6 bits, sign in the
/// top bit (`1` = subtract). Shared with the lane kernels in `simd.rs`.
pub(crate) const SHIFT_MASK: u32 = 0x3f;
pub(crate) const SIGN_BIT: u32 = 1 << 31;

/// One compiled tap: flat kernel-space offset plus the packed shift/sign
/// code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Tap {
    /// Index into the `[c, kh, kw]` filter volume.
    offset: u32,
    /// Shift amount and sign, packed (`SHIFT_MASK` / `SIGN_BIT`).
    code: u32,
}

/// Why a [`ShiftPlan`] cannot compile to shift taps.
#[derive(Debug, Clone, PartialEq)]
pub enum ShiftCompileError {
    /// `weight_dims` is not rank 4.
    BadWeightRank(usize),
    /// The kernel window is not square.
    NonSquareKernel {
        /// Kernel height.
        kh: usize,
        /// Kernel width.
        kw: usize,
    },
    /// The plan's filter count disagrees with the weight shape.
    FilterCountMismatch {
        /// Filters in the plan.
        plan: usize,
        /// Filters in `weight_dims`.
        weights: usize,
    },
    /// The plan's filter length disagrees with `c · kh · kw`.
    FilterLenMismatch {
        /// Coefficients per filter in the plan.
        plan: usize,
        /// `c · kh · kw` from `weight_dims`.
        weights: usize,
    },
    /// A nonzero tap is not `±2^e` — the plan is not a shift program.
    NotPowerOfTwo {
        /// Filter index.
        filter: usize,
        /// Flat coefficient index within the filter volume.
        index: usize,
        /// The offending coefficient.
        value: f32,
    },
    /// A tap's shift relative to the layer minimum exceeds the barrel
    /// shifter's range.
    ShiftOutOfRange {
        /// Filter index.
        filter: usize,
        /// Flat coefficient index within the filter volume.
        index: usize,
        /// The out-of-range shift amount.
        shift: i32,
    },
}

impl std::fmt::Display for ShiftCompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShiftCompileError::BadWeightRank(rank) => {
                write!(f, "weights must be [f, c, k, k], got rank {rank}")
            }
            ShiftCompileError::NonSquareKernel { kh, kw } => {
                write!(f, "kernels must be square, got {kh}x{kw}")
            }
            ShiftCompileError::FilterCountMismatch { plan, weights } => {
                write!(f, "plan has {plan} filters but weights have {weights}")
            }
            ShiftCompileError::FilterLenMismatch { plan, weights } => {
                write!(f, "plan filter length {plan} != weight volume {weights}")
            }
            ShiftCompileError::NotPowerOfTwo {
                filter,
                index,
                value,
            } => write!(
                f,
                "filter {filter} tap {index} is {value}, not a power of two"
            ),
            ShiftCompileError::ShiftOutOfRange {
                filter,
                index,
                shift,
            } => write!(f, "filter {filter} tap {index}: shift {shift} out of range"),
        }
    }
}

impl std::error::Error for ShiftCompileError {}

/// `Some(e)` iff `v == ±2^e` exactly.
fn strict_pow2_exponent(v: f32) -> Option<i32> {
    let e = pow2_exponent(v)?;
    ((e as f32).exp2() == v.abs()).then_some(e)
}

/// How a [`ShiftKernel`] decomposes one output geometry — surfaced to
/// telemetry (`kernel.lowering.*` gauges) and the lowering bench exhibit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoweringStats {
    /// Output positions on the branchless interior path.
    pub interior_positions: usize,
    /// Output positions on the checked border path.
    pub border_positions: usize,
    /// Total shift taps across all filters.
    pub total_taps: usize,
    /// Number of filters.
    pub filters: usize,
}

impl LoweringStats {
    /// Mean taps per filter (`0.0` for an empty kernel).
    pub fn mean_taps_per_filter(&self) -> f64 {
        if self.filters == 0 {
            0.0
        } else {
            self.total_taps as f64 / self.filters as f64
        }
    }
}

/// Geometry-keyed cache of lowered programs. Networks see one geometry
/// per layer, so the list stays tiny; linear lookup beats hashing.
type LoweredCache = Arc<Mutex<Vec<(Conv2dGeometry, Arc<LoweredShift>)>>>;

/// A conv layer compiled for shift-add execution.
///
/// # Example
///
/// ```
/// use flight_kernels::ShiftKernel;
/// use flightnn::convert::shift_plan;
/// use flightnn::layers::QuantConv2d;
/// use flightnn::QuantScheme;
/// use flight_tensor::TensorRng;
///
/// let mut rng = TensorRng::seed(0);
/// let mut conv = QuantConv2d::new(&mut rng, &QuantScheme::l1(), 3, 8, 3, 1, 1);
/// let plan = shift_plan(&mut conv);
/// let kernel = ShiftKernel::compile(&plan, &[8, 3, 3, 3]);
/// assert_eq!(kernel.filters(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct ShiftKernel {
    /// All filters' taps, concatenated; within each filter sorted by flat
    /// offset, i.e. by `(channel, kernel row, kernel column)`, so the
    /// lowered inner loop walks input memory forward.
    taps: Vec<Tap>,
    /// Filter `f`'s taps are `taps[bounds[f] as usize..bounds[f+1] as usize]`.
    bounds: Vec<u32>,
    /// Global scale `2^{e_min}` restoring real weight magnitudes.
    base_scale: f32,
    /// Filter volume dims `[c, kh, kw]`.
    in_channels: usize,
    kernel: usize,
    /// Lowered tap programs, one per geometry, shared across clones (and
    /// therefore across the parallel engine's workers).
    lowered: LoweredCache,
}

impl ShiftKernel {
    /// Compiles a [`ShiftPlan`] into shift taps. `weight_dims` is the
    /// original weight shape `[f, c, kh, kw]`.
    ///
    /// # Errors
    ///
    /// Returns a [`ShiftCompileError`] if the plan does not match
    /// `weight_dims`, a nonzero tap is not an exact power of two, or a
    /// shift amount exceeds the barrel shifter's range.
    pub fn try_compile(plan: &ShiftPlan, weight_dims: &[usize]) -> Result<Self, ShiftCompileError> {
        if weight_dims.len() != 4 {
            return Err(ShiftCompileError::BadWeightRank(weight_dims.len()));
        }
        let (f, c, kh, kw) = (
            weight_dims[0],
            weight_dims[1],
            weight_dims[2],
            weight_dims[3],
        );
        if kh != kw {
            return Err(ShiftCompileError::NonSquareKernel { kh, kw });
        }
        if plan.filters.len() != f {
            return Err(ShiftCompileError::FilterCountMismatch {
                plan: plan.filters.len(),
                weights: f,
            });
        }
        if plan.filter_len != c * kh * kw {
            return Err(ShiftCompileError::FilterLenMismatch {
                plan: plan.filter_len,
                weights: c * kh * kw,
            });
        }

        // Find the minimum exponent across all taps so shifts are >= 0.
        let mut min_exp = i32::MAX;
        for (fi, fp) in plan.filters.iter().enumerate() {
            for sub in &fp.subfilters {
                for (idx, &v) in sub.coefficients.iter().enumerate() {
                    if v == 0.0 {
                        continue;
                    }
                    let e = strict_pow2_exponent(v).ok_or(ShiftCompileError::NotPowerOfTwo {
                        filter: fi,
                        index: idx,
                        value: v,
                    })?;
                    min_exp = min_exp.min(e);
                }
            }
        }
        if min_exp == i32::MAX {
            min_exp = 0; // all-zero layer
        }

        let mut taps = Vec::new();
        let mut bounds = Vec::with_capacity(f + 1);
        bounds.push(0u32);
        for (fi, fp) in plan.filters.iter().enumerate() {
            let filter_start = taps.len();
            for sub in &fp.subfilters {
                for (idx, &v) in sub.coefficients.iter().enumerate() {
                    if v == 0.0 {
                        continue;
                    }
                    let e = strict_pow2_exponent(v).expect("validated above");
                    let shift = e - min_exp;
                    if !(0..=SHIFT_MASK as i32).contains(&shift) {
                        return Err(ShiftCompileError::ShiftOutOfRange {
                            filter: fi,
                            index: idx,
                            shift,
                        });
                    }
                    let mut code = shift as u32;
                    if v < 0.0 {
                        code |= SIGN_BIT;
                    }
                    taps.push(Tap {
                        offset: idx as u32,
                        code,
                    });
                }
            }
            // Sort this filter's taps by offset == (ch, ki, kj) so the
            // lowered loop reads the input front to back. Integer
            // accumulation is exact, so reordering cannot change results.
            taps[filter_start..].sort_unstable_by_key(|t| t.offset);
            bounds.push(taps.len() as u32);
        }

        Ok(ShiftKernel {
            taps,
            bounds,
            base_scale: (min_exp as f32).exp2(),
            in_channels: c,
            kernel: kh,
            lowered: Arc::new(Mutex::new(Vec::new())),
        })
    }

    /// Compiles a [`ShiftPlan`] into shift taps, panicking on invalid
    /// input — the historical API; see [`ShiftKernel::try_compile`] for
    /// the `Result`-returning form.
    ///
    /// # Panics
    ///
    /// Panics if the plan does not match `weight_dims`, or a tap is not a
    /// power of two.
    pub fn compile(plan: &ShiftPlan, weight_dims: &[usize]) -> Self {
        ShiftKernel::try_compile(plan, weight_dims)
            .unwrap_or_else(|e| panic!("ShiftKernel::compile: {e}"))
    }

    /// Number of filters.
    pub fn filters(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Square kernel side the taps were compiled for.
    pub fn kernel_size(&self) -> usize {
        self.kernel
    }

    /// Input channels the taps were compiled for.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Total shift taps (shift operations per output position summed over
    /// filters).
    pub fn total_taps(&self) -> usize {
        self.taps.len()
    }

    /// The interior/border decomposition this kernel uses for `geom`
    /// (forces the lowering, which is cached).
    pub fn lowering_stats(&self, geom: &Conv2dGeometry) -> LoweringStats {
        let lowered = self.lowered(geom);
        LoweringStats {
            interior_positions: lowered.interior_positions,
            border_positions: lowered.border_positions,
            total_taps: self.total_taps(),
            filters: self.filters(),
        }
    }

    /// The lowered program for `geom`, building and caching it on first
    /// use. Clones share the cache, so the parallel engine lowers each
    /// layer geometry exactly once.
    fn lowered(&self, geom: &Conv2dGeometry) -> Arc<LoweredShift> {
        let mut cache = self.lowered.lock().expect("lowering cache poisoned");
        if let Some((_, program)) = cache.iter().find(|(g, _)| g == geom) {
            return program.clone();
        }
        let program = Arc::new(LoweredShift::build(self, geom));
        cache.push((*geom, program.clone()));
        program
    }
}

/// One tap on the checked border path: channel plane base plus the tap's
/// kernel-window deltas (the position loop folds padding into its window
/// origin).
#[derive(Debug, Clone, Copy)]
struct BorderTap {
    /// `ch · h · w` — flat base of the tap's input channel plane.
    plane: u32,
    /// Kernel row `ki`.
    di: i32,
    /// Kernel column `kj`.
    dj: i32,
}

/// A [`ShiftKernel`] lowered against one concrete [`Conv2dGeometry`]:
/// precomputed interior offsets, decoded border taps, and the op totals
/// hoisted out of the runtime loops.
#[derive(Debug)]
struct LoweredShift {
    rect: InteriorRect,
    /// Per tap: flat input offset relative to the output position's
    /// window origin (`ch·h·w + ki·w + kj`); indexed by the kernel's
    /// `bounds`.
    offsets: Vec<u32>,
    /// Per tap: packed shift/sign code (parallel to `offsets`).
    codes: Vec<u32>,
    /// Per tap: checked-path decoding (parallel to `offsets`).
    border: Vec<BorderTap>,
    /// Shift ops one image costs (interior analytic + border dry run).
    shifts_per_image: u64,
    /// Integer adds one image costs under the `k` shifts / `k−1` adds
    /// convention (see [`OpCounts`]).
    adds_per_image: u64,
    interior_positions: usize,
    border_positions: usize,
    /// Largest packed shift amount across all taps — the lane path
    /// requires it ≤ [`MAX_LANE_SHIFT`] so `a << s` stays defined (and
    /// bounded) in i32.
    max_shift: u32,
    /// Worst-case per-filter magnitude multiplier `max_f Σ_taps 2^s`:
    /// an interior accumulator is bounded by `max |code| · lane_weight`,
    /// which must fit i32 for the lane path to match the scalar i64
    /// accumulation bit-for-bit.
    lane_weight: u64,
}

impl LoweredShift {
    fn build(kernel: &ShiftKernel, geom: &Conv2dGeometry) -> LoweredShift {
        let (h, w) = (geom.in_h, geom.in_w);
        let k = geom.kernel;
        let p = geom.padding as i32;
        debug_assert_eq!(k, kernel.kernel, "geometry/kernel size mismatch");
        assert!(
            geom.in_channels * h * w <= u32::MAX as usize,
            "input volume too large for lowered offsets"
        );
        let rect = interior_rect(geom);

        let mut offsets = Vec::with_capacity(kernel.taps.len());
        let mut codes = Vec::with_capacity(kernel.taps.len());
        let mut border = Vec::with_capacity(kernel.taps.len());
        for tap in &kernel.taps {
            let off = tap.offset as usize;
            let (ch, ki, kj) = (off / (k * k), (off / k) % k, off % k);
            offsets.push((ch * h * w + ki * w + kj) as u32);
            codes.push(tap.code);
            border.push(BorderTap {
                plane: (ch * h * w) as u32,
                di: ki as i32,
                dj: kj as i32,
            });
        }

        // Interior accounting is analytic: every tap executes at every
        // interior position, and a filter with `t` executed taps costs
        // `t` shifts and `t − 1` adds.
        let interior_positions = rect.positions();
        let mut shifts = 0u64;
        let mut adds = 0u64;
        for fi in 0..kernel.filters() {
            let t = (kernel.bounds[fi + 1] - kernel.bounds[fi]) as u64;
            shifts += t * interior_positions as u64;
            adds += t.saturating_sub(1) * interior_positions as u64;
        }

        // Border accounting is a one-time dry run of the checked path.
        let mut border_positions = 0usize;
        for_each_border_position(geom, &rect, |oi, oj| {
            border_positions += 1;
            let ii0 = (oi * geom.stride) as i32 - p;
            let jj0 = (oj * geom.stride) as i32 - p;
            for fi in 0..kernel.filters() {
                let lo = kernel.bounds[fi] as usize;
                let hi = kernel.bounds[fi + 1] as usize;
                let executed = border[lo..hi]
                    .iter()
                    .filter(|bt| {
                        let ii = ii0 + bt.di;
                        let jj = jj0 + bt.dj;
                        (0..h as i32).contains(&ii) && (0..w as i32).contains(&jj)
                    })
                    .count() as u64;
                shifts += executed;
                adds += executed.saturating_sub(1);
            }
        });

        // Lane-eligibility bounds (see the field docs): worst-case shift
        // and per-filter magnitude multiplier, both over the packed codes.
        let mut max_shift = 0u32;
        let mut lane_weight = 0u64;
        for fi in 0..kernel.filters() {
            let mut filter_weight = 0u64;
            for cd in &codes[kernel.bounds[fi] as usize..kernel.bounds[fi + 1] as usize] {
                let s = cd & SHIFT_MASK;
                max_shift = max_shift.max(s);
                filter_weight =
                    filter_weight.saturating_add(1u64.checked_shl(s).unwrap_or(u64::MAX));
            }
            lane_weight = lane_weight.max(filter_weight);
        }

        LoweredShift {
            rect,
            offsets,
            codes,
            border,
            shifts_per_image: shifts,
            adds_per_image: adds,
            interior_positions,
            border_positions,
            max_shift,
            lane_weight,
        }
    }

    /// The path this call actually runs: the requested lane path only
    /// when the batch fills at least one lane block, the interior is
    /// nonempty, and i32 lane accumulation provably cannot wrap (see
    /// the `lane_weight` field docs); [`KernelPath::Scalar`] otherwise.
    fn lane_path(&self, requested: KernelPath, codes: &[i32], n: usize) -> KernelPath {
        if requested == KernelPath::Scalar
            || n < LANES
            || self.interior_positions == 0
            || self.max_shift > MAX_LANE_SHIFT
        {
            return KernelPath::Scalar;
        }
        let max_abs = codes
            .iter()
            .map(|c| c.unsigned_abs() as u64)
            .max()
            .unwrap_or(0);
        if max_abs.saturating_mul(self.lane_weight) > i32::MAX as u64 {
            return KernelPath::Scalar;
        }
        requested
    }

    /// Executes the lowered program: lane-blocked SIMD interior where
    /// eligible (full blocks of [`LANES`] images), scalar interior
    /// otherwise, checked scalar border always. Writes outputs only —
    /// op accounting lives in the precomputed per-image totals, which
    /// are dispatch-invariant.
    fn run(
        &self,
        kernel: &ShiftKernel,
        codes_in: &[i32],
        scales: &[f32],
        geom: &Conv2dGeometry,
        out: &mut [f32],
        lanes: &mut LaneCtx,
    ) {
        let n = scales.len();
        let path = self.lane_path(lanes.path(), codes_in, n);
        let lane_images = if path == KernelPath::Scalar {
            0
        } else {
            n - n % LANES
        };

        if lane_images > 0 {
            let chw = geom.in_channels * geom.in_h * geom.in_w;
            let f = kernel.filters();
            let img_stride = f * geom.out_h * geom.out_w;
            let g = BlockGeom {
                rect: self.rect,
                stride: geom.stride,
                padding: geom.padding,
                in_w: geom.in_w,
                out_w: geom.out_w,
            };
            for b0 in (0..lane_images).step_by(LANES) {
                pack_lane_block(
                    &codes_in[b0 * chw..(b0 + LANES) * chw],
                    chw,
                    &mut lanes.block,
                );
                let mut out_scales = [0f32; LANES];
                for (l, slot) in out_scales.iter_mut().enumerate() {
                    *slot = scales[b0 + l] * kernel.base_scale;
                }
                for fi in 0..f {
                    let lo = kernel.bounds[fi] as usize;
                    let hi = kernel.bounds[fi + 1] as usize;
                    run_shift_rect(
                        path,
                        &lanes.block,
                        &self.offsets[lo..hi],
                        &self.codes[lo..hi],
                        &g,
                        out,
                        (b0 * f + fi) * geom.out_h * geom.out_w,
                        img_stride,
                        &out_scales,
                    );
                }
            }
            // The border ring of the lane-covered images stays scalar.
            self.run_scalar(kernel, codes_in, scales, geom, out, 0..lane_images, false);
        }

        // Remnant images (or the whole batch when the lane path is off)
        // run the per-image scalar path, so any batch size produces the
        // same bits as solo inference.
        self.run_scalar(kernel, codes_in, scales, geom, out, lane_images..n, true);
    }

    /// The per-image scalar path over a range of images: i64-accumulated
    /// interior (when `include_interior`) plus the checked border.
    #[allow(clippy::too_many_arguments)]
    fn run_scalar(
        &self,
        kernel: &ShiftKernel,
        codes_in: &[i32],
        scales: &[f32],
        geom: &Conv2dGeometry,
        out: &mut [f32],
        images: std::ops::Range<usize>,
        include_interior: bool,
    ) {
        let (c, h, w) = (geom.in_channels, geom.in_h, geom.in_w);
        let chw = c * h * w;
        let (stride, padding) = (geom.stride, geom.padding);
        let f = kernel.filters();
        let (out_h, out_w) = (geom.out_h, geom.out_w);
        let rect = self.rect;

        for b in images {
            let out_scale = scales[b] * kernel.base_scale;
            let img = &codes_in[b * chw..(b + 1) * chw];
            for fi in 0..f {
                let lo = kernel.bounds[fi] as usize;
                let hi = kernel.bounds[fi + 1] as usize;
                let offs = &self.offsets[lo..hi];
                let tap_codes = &self.codes[lo..hi];

                // Interior: no padding branch, no index decode, no
                // per-tap accounting — load, shift, sign-fold, add.
                // Skipped when a lane block already wrote these bits.
                if include_interior {
                    for oi in rect.oi_lo..rect.oi_hi {
                        let out_row = ((b * f + fi) * out_h + oi) * out_w;
                        let in_row = (oi * stride - padding) * w;
                        for oj in rect.oj_lo..rect.oj_hi {
                            let base = in_row + oj * stride - padding;
                            let mut acc: i64 = 0;
                            for (&o, &cd) in offs.iter().zip(tap_codes) {
                                let a = img[base + o as usize] as i64;
                                let term = a << (cd & SHIFT_MASK);
                                let mask = ((cd as i32) >> 31) as i64;
                                acc += (term ^ mask) - mask;
                            }
                            out[out_row + oj] = acc as f32 * out_scale;
                        }
                    }
                }

                // Border: the checked path, on the thin frame only.
                let border_taps = &self.border[lo..hi];
                for_each_border_position(geom, &rect, |oi, oj| {
                    let ii0 = (oi * stride) as i32 - padding as i32;
                    let jj0 = (oj * stride) as i32 - padding as i32;
                    let mut acc: i64 = 0;
                    for (bt, &cd) in border_taps.iter().zip(tap_codes) {
                        let ii = ii0 + bt.di;
                        let jj = jj0 + bt.dj;
                        if (0..h as i32).contains(&ii) && (0..w as i32).contains(&jj) {
                            let a = img[bt.plane as usize + ii as usize * w + jj as usize] as i64;
                            let term = a << (cd & SHIFT_MASK);
                            let mask = ((cd as i32) >> 31) as i64;
                            acc += (term ^ mask) - mask;
                        }
                    }
                    out[((b * f + fi) * out_h + oi) * out_w + oj] = acc as f32 * out_scale;
                });
            }
        }
    }
}

/// Validates the shared layout contract of the conv cores.
fn check_core_shapes(
    codes: &[i32],
    scales: &[f32],
    geom: &Conv2dGeometry,
    kernel: &ShiftKernel,
    out: &[f32],
) {
    let n = scales.len();
    let (c, h, w) = (geom.in_channels, geom.in_h, geom.in_w);
    assert_eq!(
        c, kernel.in_channels,
        "activation channels {c} != kernel channels {}",
        kernel.in_channels
    );
    assert_eq!(geom.kernel, kernel.kernel, "geometry/kernel size mismatch");
    assert_eq!(codes.len(), n * c * h * w, "codes length mismatch");
    assert_eq!(
        out.len(),
        n * kernel.filters() * geom.out_positions(),
        "output length mismatch"
    );
}

/// Shift-add convolution over raw integer codes with one scale per image
/// — the lowered core.
///
/// `scales.len()` is the batch size `n`; image `b`'s codes occupy
/// `codes[b·chw .. (b+1)·chw]` and its outputs are rescaled by
/// `scales[b] · kernel.base_scale`. Results accumulate into `out`
/// (length `n · filters · out_positions`, row-major `[n, f, oh, ow]`)
/// and op counts into `counts`, so the execution engine can drive this
/// from reusable per-worker scratch buffers.
///
/// Per-image scales are what make each image's pipeline independent of
/// its batchmates — the invariant the batched engine's bit-exact
/// parallel/sequential parity rests on.
pub(crate) fn shift_add_conv_core(
    codes: &[i32],
    scales: &[f32],
    geom: &Conv2dGeometry,
    kernel: &ShiftKernel,
    out: &mut [f32],
    counts: &mut OpCounts,
    lanes: &mut LaneCtx,
) {
    check_core_shapes(codes, scales, geom, kernel, out);
    let lowered = kernel.lowered(geom);
    lowered.run(kernel, codes, scales, geom, out, lanes);
    let n = scales.len() as u64;
    counts.shifts += n * lowered.shifts_per_image;
    counts.int_adds += n * lowered.adds_per_image;
}

/// The interpreted tap loop the lowered core replaced: re-decodes every
/// tap's `(ch, ki, kj)` per output position and checks padding bounds per
/// tap. Retained as the bit-exactness oracle for the lowering (the
/// parity proptests compare against it) and as the baseline of the
/// `lowering` bench exhibit.
pub(crate) fn shift_add_conv_reference_core(
    codes: &[i32],
    scales: &[f32],
    geom: &Conv2dGeometry,
    kernel: &ShiftKernel,
    out: &mut [f32],
    counts: &mut OpCounts,
    _lanes: &mut LaneCtx,
) {
    check_core_shapes(codes, scales, geom, kernel, out);
    let n = scales.len();
    let (c, h, w) = (geom.in_channels, geom.in_h, geom.in_w);
    let k = geom.kernel;
    let (stride, padding) = (geom.stride, geom.padding);
    let f = kernel.filters();

    for b in 0..n {
        let out_scale = scales[b] * kernel.base_scale;
        for fi in 0..f {
            let taps = &kernel.taps[kernel.bounds[fi] as usize..kernel.bounds[fi + 1] as usize];
            for oi in 0..geom.out_h {
                let row = ((b * f + fi) * geom.out_h + oi) * geom.out_w;
                for oj in 0..geom.out_w {
                    let mut acc: i64 = 0;
                    let mut executed: u64 = 0;
                    for tap in taps {
                        // Decode the tap's position in the [c, k, k] volume.
                        let off = tap.offset as usize;
                        let ch = off / (k * k);
                        let ki = (off / k) % k;
                        let kj = off % k;
                        let ii = (oi * stride + ki) as isize - padding as isize;
                        let jj = (oj * stride + kj) as isize - padding as isize;
                        if ii < 0 || jj < 0 || ii as usize >= h || jj as usize >= w {
                            continue;
                        }
                        let a = codes[((b * c + ch) * h + ii as usize) * w + jj as usize] as i64;
                        let term = a << (tap.code & SHIFT_MASK);
                        acc += if tap.code & SIGN_BIT != 0 {
                            -term
                        } else {
                            term
                        };
                        executed += 1;
                    }
                    counts.shifts += executed;
                    counts.int_adds += executed.saturating_sub(1);
                    out[row + oj] = acc as f32 * out_scale;
                }
            }
        }
    }
}

/// Shift-add convolution over integer activation codes (lowered path).
///
/// Returns the float output `[n, f, oh, ow]` and the operation counts
/// (`k` shifts and `k − 1` adds per position under the paper's §3 cost
/// model — see [`OpCounts`]; no multiplies anywhere).
///
/// # Panics
///
/// Panics on activation/kernel shape mismatches.
pub fn shift_add_conv(
    act: &QuantActivations,
    kernel: &ShiftKernel,
    stride: usize,
    padding: usize,
) -> (Tensor, OpCounts) {
    shift_add_conv_with_path(act, kernel, stride, padding, active_path())
}

/// [`shift_add_conv`] pinned to a specific [`KernelPath`] instead of
/// the process-wide dispatch decision — the entry point of the
/// path-matrix parity tests and the `lowering` bench exhibit.
pub fn shift_add_conv_with_path(
    act: &QuantActivations,
    kernel: &ShiftKernel,
    stride: usize,
    padding: usize,
    path: KernelPath,
) -> (Tensor, OpCounts) {
    shift_add_conv_with(
        act,
        kernel,
        stride,
        padding,
        shift_add_conv_core,
        LaneCtx::with_path(path),
    )
}

/// [`shift_add_conv`] on the retained interpreted core — the oracle the
/// lowered path is tested against, and the baseline the `lowering` bench
/// exhibit times. Bit-identical outputs and counts to the lowered path,
/// only slower.
pub fn shift_add_conv_reference(
    act: &QuantActivations,
    kernel: &ShiftKernel,
    stride: usize,
    padding: usize,
) -> (Tensor, OpCounts) {
    shift_add_conv_with(
        act,
        kernel,
        stride,
        padding,
        shift_add_conv_reference_core,
        LaneCtx::with_path(KernelPath::Scalar),
    )
}

type ShiftCore =
    fn(&[i32], &[f32], &Conv2dGeometry, &ShiftKernel, &mut [f32], &mut OpCounts, &mut LaneCtx);

fn shift_add_conv_with(
    act: &QuantActivations,
    kernel: &ShiftKernel,
    stride: usize,
    padding: usize,
    core: ShiftCore,
    mut lanes: LaneCtx,
) -> (Tensor, OpCounts) {
    let ad = act.dims();
    assert_eq!(ad.len(), 4, "activations must be [n, c, h, w]");
    let (n, c, h, w) = (ad[0], ad[1], ad[2], ad[3]);
    let geom = Conv2dGeometry::new(c, h, w, kernel.kernel, stride, padding);
    let mut out = Tensor::zeros(&[n, kernel.filters(), geom.out_h, geom.out_w]);
    let scales = vec![act.scale(); n];
    let mut counts = OpCounts::default();
    core(
        act.codes(),
        &scales,
        &geom,
        kernel,
        out.as_mut_slice(),
        &mut counts,
        &mut lanes,
    );
    (out, counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flight_nn::layers::functional::conv2d_forward;
    use flight_tensor::{uniform, TensorRng};
    use flightnn::convert::{shift_plan, FilterPlan, SubFilter};
    use flightnn::layers::QuantConv2d;
    use flightnn::QuantScheme;

    fn check_scheme(scheme: QuantScheme, seed: u64) {
        let mut rng = TensorRng::seed(seed);
        let mut conv = QuantConv2d::new(&mut rng, &scheme, 3, 4, 3, 1, 1);
        let plan = shift_plan(&mut conv);
        let dims = conv.shadow().value.dims().to_vec();
        let kernel = ShiftKernel::compile(&plan, &dims);

        let x = uniform(&mut rng, &[2, 3, 6, 6], -1.0, 1.0);
        let qa = QuantActivations::quantize(&x, 8);
        let qweights = conv.quantized_weights();

        let (reference, _) = conv2d_forward(
            &qa.dequantize(),
            &qweights,
            &Tensor::zeros(&[4]),
            1,
            1,
            false,
        );
        let (out, counts) = shift_add_conv(&qa, &kernel, 1, 1);
        assert!(
            out.allclose(&reference, 1e-3),
            "shift-add diverges from reference for {}",
            scheme.label()
        );
        assert_eq!(counts.int_mults, 0, "shift kernel must not multiply");
        assert!(counts.shifts > 0);

        // The lowered path and the interpreted oracle are bit-identical.
        let (oracle, oracle_counts) = shift_add_conv_reference(&qa, &kernel, 1, 1);
        assert_eq!(out.as_slice(), oracle.as_slice(), "lowered != oracle");
        assert_eq!(counts, oracle_counts, "lowered counts != oracle counts");
    }

    #[test]
    fn lightnn1_matches_reference() {
        check_scheme(QuantScheme::l1(), 11);
    }

    #[test]
    fn lightnn2_matches_reference() {
        check_scheme(QuantScheme::l2(), 12);
    }

    #[test]
    fn flightnn_matches_reference() {
        check_scheme(QuantScheme::flight(1e-5), 13);
    }

    #[test]
    fn tap_count_scales_with_k() {
        let mut rng = TensorRng::seed(14);
        let mut c1 = QuantConv2d::new(&mut rng, &QuantScheme::l1(), 2, 4, 3, 1, 1);
        let mut rng = TensorRng::seed(14);
        let mut c2 = QuantConv2d::new(&mut rng, &QuantScheme::l2(), 2, 4, 3, 1, 1);
        let p1 = shift_plan(&mut c1);
        let p2 = shift_plan(&mut c2);
        let k1 = ShiftKernel::compile(&p1, &[4, 2, 3, 3]);
        let k2 = ShiftKernel::compile(&p2, &[4, 2, 3, 3]);
        assert!(
            k2.total_taps() > k1.total_taps(),
            "L-2 should need more shift taps than L-1"
        );
    }

    #[test]
    fn core_with_per_image_scales_matches_solo_images() {
        let mut rng = TensorRng::seed(16);
        let mut conv = QuantConv2d::new(&mut rng, &QuantScheme::l1(), 2, 3, 3, 1, 1);
        let plan = shift_plan(&mut conv);
        let kernel = ShiftKernel::compile(&plan, &[3, 2, 3, 3]);
        let x = uniform(&mut rng, &[3, 2, 6, 6], -1.0, 1.0);

        let mut codes = Vec::new();
        let mut scales = Vec::new();
        QuantActivations::quantize_per_image_into(&x, 8, &mut codes, &mut scales);
        let geom = Conv2dGeometry::new(2, 6, 6, 3, 1, 1);
        let mut out = vec![0.0f32; 3 * kernel.filters() * geom.out_positions()];
        let mut counts = OpCounts::default();
        shift_add_conv_core(
            &codes,
            &scales,
            &geom,
            &kernel,
            &mut out,
            &mut counts,
            &mut LaneCtx::new(),
        );

        // Each image must be bit-identical to submitting it alone.
        let img_out = kernel.filters() * geom.out_positions();
        let mut solo_counts = OpCounts::default();
        for b in 0..3 {
            let img = Tensor::from_vec(x.outer(b).to_vec(), &[1, 2, 6, 6]);
            let qa = QuantActivations::quantize(&img, 8);
            let (solo, c) = shift_add_conv(&qa, &kernel, 1, 1);
            solo_counts += c;
            assert_eq!(
                &out[b * img_out..(b + 1) * img_out],
                solo.as_slice(),
                "image {b} diverges from solo inference"
            );
        }
        assert_eq!(counts, solo_counts, "op counts reduce associatively");
    }

    #[test]
    fn stride_two_matches_reference() {
        let mut rng = TensorRng::seed(15);
        let mut conv = QuantConv2d::new(&mut rng, &QuantScheme::l2(), 2, 3, 3, 2, 1);
        let plan = shift_plan(&mut conv);
        let kernel = ShiftKernel::compile(&plan, &[3, 2, 3, 3]);
        let x = uniform(&mut rng, &[1, 2, 8, 8], -1.0, 1.0);
        let qa = QuantActivations::quantize(&x, 8);
        let (reference, _) = conv2d_forward(
            &qa.dequantize(),
            &conv.quantized_weights(),
            &Tensor::zeros(&[3]),
            2,
            1,
            false,
        );
        let (out, _) = shift_add_conv(&qa, &kernel, 2, 1);
        assert!(out.allclose(&reference, 1e-3));
    }

    /// A hand-built plan: one filter over a [1, 2, 2] volume.
    fn tiny_plan(coefficients: Vec<f32>) -> ShiftPlan {
        ShiftPlan {
            filters: vec![FilterPlan {
                subfilters: vec![SubFilter { coefficients }],
            }],
            filter_len: 4,
        }
    }

    #[test]
    fn try_compile_rejects_non_power_of_two_taps() {
        let plan = tiny_plan(vec![0.5, 0.0, 0.3, -1.0]);
        let err = ShiftKernel::try_compile(&plan, &[1, 1, 2, 2]).unwrap_err();
        assert_eq!(
            err,
            ShiftCompileError::NotPowerOfTwo {
                filter: 0,
                index: 2,
                value: 0.3
            }
        );
        assert!(err.to_string().contains("not a power of two"));
    }

    #[test]
    fn try_compile_rejects_shape_mismatches() {
        let plan = tiny_plan(vec![0.5, 0.0, 0.25, -1.0]);
        assert_eq!(
            ShiftKernel::try_compile(&plan, &[1, 1, 2]).unwrap_err(),
            ShiftCompileError::BadWeightRank(3)
        );
        assert_eq!(
            ShiftKernel::try_compile(&plan, &[1, 1, 2, 3]).unwrap_err(),
            ShiftCompileError::NonSquareKernel { kh: 2, kw: 3 }
        );
        assert_eq!(
            ShiftKernel::try_compile(&plan, &[2, 1, 2, 2]).unwrap_err(),
            ShiftCompileError::FilterCountMismatch {
                plan: 1,
                weights: 2
            }
        );
        assert_eq!(
            ShiftKernel::try_compile(&plan, &[1, 2, 2, 2]).unwrap_err(),
            ShiftCompileError::FilterLenMismatch {
                plan: 4,
                weights: 8
            }
        );
    }

    #[test]
    #[should_panic(expected = "not a power of two")]
    fn compile_panics_where_try_compile_errors() {
        let plan = tiny_plan(vec![0.3, 0.0, 0.0, 0.0]);
        let _ = ShiftKernel::compile(&plan, &[1, 1, 2, 2]);
    }

    #[test]
    fn taps_are_sorted_for_sequential_access() {
        // Two subfilters whose taps interleave: compile must merge-sort
        // them by flat offset within the filter.
        let plan = ShiftPlan {
            filters: vec![FilterPlan {
                subfilters: vec![
                    SubFilter {
                        coefficients: vec![0.0, 1.0, 0.0, -0.5],
                    },
                    SubFilter {
                        coefficients: vec![2.0, 0.0, 0.25, 0.0],
                    },
                ],
            }],
            filter_len: 4,
        };
        let kernel = ShiftKernel::compile(&plan, &[1, 1, 2, 2]);
        let offsets: Vec<u32> = kernel.taps.iter().map(|t| t.offset).collect();
        assert_eq!(offsets, vec![0, 1, 2, 3]);
    }

    #[test]
    fn cost_convention_k_shifts_k_minus_1_adds() {
        // Padding 0: every position is interior and executes all taps, so
        // the §3 cost model is exact: taps shifts, taps−1 adds per
        // position.
        let plan = tiny_plan(vec![0.5, -1.0, 2.0, 0.0]); // 3 taps
        let kernel = ShiftKernel::compile(&plan, &[1, 1, 2, 2]);
        let mut rng = TensorRng::seed(17);
        let x = uniform(&mut rng, &[2, 1, 5, 5], -1.0, 1.0);
        let qa = QuantActivations::quantize(&x, 8);
        let (_, counts) = shift_add_conv(&qa, &kernel, 1, 0);
        let positions = 4 * 4 * 2; // out 4x4, batch 2
        assert_eq!(counts.shifts, 3 * positions);
        assert_eq!(counts.int_adds, 2 * positions);
        let (_, oracle) = shift_add_conv_reference(&qa, &kernel, 1, 0);
        assert_eq!(counts, oracle);
    }

    #[test]
    fn lowering_stats_split_the_output_map() {
        let plan = tiny_plan(vec![0.5, -1.0, 2.0, 0.25]);
        let kernel = ShiftKernel::compile(&plan, &[1, 1, 2, 2]);
        let geom = Conv2dGeometry::new(1, 6, 6, 2, 1, 1);
        let stats = kernel.lowering_stats(&geom);
        assert_eq!(
            stats.interior_positions + stats.border_positions,
            geom.out_positions()
        );
        assert!(stats.interior_positions > 0, "6x6 k2 p1 has an interior");
        assert!(stats.border_positions > 0, "padding creates a border");
        assert_eq!(stats.total_taps, 4);
        assert_eq!(stats.filters, 1);
        assert_eq!(stats.mean_taps_per_filter(), 4.0);
    }

    #[test]
    fn oversized_shifts_fall_back_to_scalar_lanes() {
        // Shift amounts up to 31 exceed MAX_LANE_SHIFT, so a full lane
        // batch must silently take the scalar path — and still match the
        // interpreted oracle bit-for-bit.
        let plan = tiny_plan(vec![1.0, 2147483648.0, 0.0, 0.0]);
        let kernel = ShiftKernel::compile(&plan, &[1, 1, 2, 2]);
        let geom = Conv2dGeometry::new(1, 6, 6, 2, 1, 0);
        let lowered = kernel.lowered(&geom);
        assert!(lowered.max_shift > MAX_LANE_SHIFT);
        assert_eq!(
            lowered.lane_path(KernelPath::Portable, &[127; 8 * 36], 8),
            KernelPath::Scalar
        );

        let mut rng = TensorRng::seed(21);
        let x = uniform(&mut rng, &[LANES, 1, 6, 6], -1.0, 1.0);
        let qa = QuantActivations::quantize(&x, 8);
        let (fast, counts) = shift_add_conv(&qa, &kernel, 1, 0);
        let (oracle, oracle_counts) = shift_add_conv_reference(&qa, &kernel, 1, 0);
        assert_eq!(fast.as_slice(), oracle.as_slice());
        assert_eq!(counts, oracle_counts);
    }

    #[test]
    fn lowered_cache_is_shared_across_clones() {
        let plan = tiny_plan(vec![0.5, -1.0, 0.0, 0.25]);
        let kernel = ShiftKernel::compile(&plan, &[1, 1, 2, 2]);
        let geom = Conv2dGeometry::new(1, 6, 6, 2, 1, 1);
        let clone = kernel.clone();
        let a = kernel.lowered(&geom);
        let b = clone.lowered(&geom);
        assert!(Arc::ptr_eq(&a, &b), "clones must share lowered programs");
    }
}
