//! Shift-add convolution — the (F)LightNN datapath.
//!
//! A quantized filter is a [`ShiftPlan`] (Fig. 3): each active level is a
//! subfilter whose taps are single powers of two. The kernel therefore
//! computes every multiply as `±(a << s)` over the integer activation
//! codes, accumulating in `i64`, and rescales once at the end by
//! `2^{e_min} · act_scale`.

use flight_tensor::{Conv2dGeometry, Tensor};
use flightnn::convert::ShiftPlan;
use flightnn::pow2::pow2_exponent;

use crate::counts::OpCounts;
use crate::qact::QuantActivations;

/// One compiled tap: flat kernel-space offset, left-shift amount, sign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Tap {
    /// Index into the `[c, kh, kw]` filter volume.
    offset: u32,
    /// Left shift relative to the layer's minimum exponent.
    shift: u8,
    /// `true` = subtract instead of add.
    negative: bool,
}

/// A conv layer compiled for shift-add execution.
///
/// # Example
///
/// ```
/// use flight_kernels::ShiftKernel;
/// use flightnn::convert::shift_plan;
/// use flightnn::layers::QuantConv2d;
/// use flightnn::QuantScheme;
/// use flight_tensor::TensorRng;
///
/// let mut rng = TensorRng::seed(0);
/// let mut conv = QuantConv2d::new(&mut rng, &QuantScheme::l1(), 3, 8, 3, 1, 1);
/// let plan = shift_plan(&mut conv);
/// let kernel = ShiftKernel::compile(&plan, &[8, 3, 3, 3]);
/// assert_eq!(kernel.filters(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct ShiftKernel {
    /// Per filter, the taps of all its subfilters concatenated.
    taps: Vec<Vec<Tap>>,
    /// Global scale `2^{e_min}` restoring real weight magnitudes.
    base_scale: f32,
    /// Filter volume dims `[c, kh, kw]`.
    in_channels: usize,
    kernel: usize,
}

impl ShiftKernel {
    /// Compiles a [`ShiftPlan`] into shift taps. `weight_dims` is the
    /// original weight shape `[f, c, kh, kw]`.
    ///
    /// # Panics
    ///
    /// Panics if the plan does not match `weight_dims`, or a tap is not a
    /// power of two.
    pub fn compile(plan: &ShiftPlan, weight_dims: &[usize]) -> Self {
        assert_eq!(weight_dims.len(), 4, "weights must be [f, c, k, k]");
        let (f, c, kh, kw) = (
            weight_dims[0],
            weight_dims[1],
            weight_dims[2],
            weight_dims[3],
        );
        assert_eq!(kh, kw, "kernels must be square");
        assert_eq!(plan.filters.len(), f, "plan filter count mismatch");
        assert_eq!(plan.filter_len, c * kh * kw, "plan filter size mismatch");

        // Find the minimum exponent across all taps so shifts are >= 0.
        let mut min_exp = i32::MAX;
        for fp in &plan.filters {
            for sub in &fp.subfilters {
                for &v in &sub.coefficients {
                    if v != 0.0 {
                        min_exp =
                            min_exp.min(pow2_exponent(v).expect("nonzero tap is a power of two"));
                    }
                }
            }
        }
        if min_exp == i32::MAX {
            min_exp = 0; // all-zero layer
        }

        let taps = plan
            .filters
            .iter()
            .map(|fp| {
                let mut filter_taps = Vec::new();
                for sub in &fp.subfilters {
                    for (idx, &v) in sub.coefficients.iter().enumerate() {
                        if v == 0.0 {
                            continue;
                        }
                        let e = pow2_exponent(v).expect("nonzero tap is a power of two");
                        let shift = e - min_exp;
                        assert!(
                            (0..64).contains(&shift),
                            "shift amount {shift} out of range"
                        );
                        filter_taps.push(Tap {
                            offset: idx as u32,
                            shift: shift as u8,
                            negative: v < 0.0,
                        });
                    }
                }
                filter_taps
            })
            .collect();

        ShiftKernel {
            taps,
            base_scale: (min_exp as f32).exp2(),
            in_channels: c,
            kernel: kh,
        }
    }

    /// Number of filters.
    pub fn filters(&self) -> usize {
        self.taps.len()
    }

    /// Square kernel side the taps were compiled for.
    pub fn kernel_size(&self) -> usize {
        self.kernel
    }

    /// Input channels the taps were compiled for.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Total shift taps (shift operations per output position summed over
    /// filters).
    pub fn total_taps(&self) -> usize {
        self.taps.iter().map(Vec::len).sum()
    }
}

/// Shift-add convolution over raw integer codes with one scale per image.
///
/// `scales.len()` is the batch size `n`; image `b`'s codes occupy
/// `codes[b·chw .. (b+1)·chw]` and its outputs are rescaled by
/// `scales[b] · kernel.base_scale`. Results accumulate into `out`
/// (length `n · filters · out_positions`, row-major `[n, f, oh, ow]`)
/// and op counts into `counts`, so the execution engine can drive this
/// from reusable per-worker scratch buffers.
///
/// Per-image scales are what make each image's pipeline independent of
/// its batchmates — the invariant the batched engine's bit-exact
/// parallel/sequential parity rests on.
pub(crate) fn shift_add_conv_core(
    codes: &[i32],
    scales: &[f32],
    geom: &Conv2dGeometry,
    kernel: &ShiftKernel,
    out: &mut [f32],
    counts: &mut OpCounts,
) {
    let n = scales.len();
    let (c, h, w) = (geom.in_channels, geom.in_h, geom.in_w);
    let k = geom.kernel;
    assert_eq!(
        c, kernel.in_channels,
        "activation channels {c} != kernel channels {}",
        kernel.in_channels
    );
    assert_eq!(k, kernel.kernel, "geometry/kernel size mismatch");
    assert_eq!(codes.len(), n * c * h * w, "codes length mismatch");
    assert_eq!(
        out.len(),
        n * kernel.filters() * geom.out_positions(),
        "output length mismatch"
    );
    let (stride, padding) = (geom.stride, geom.padding);

    for b in 0..n {
        let out_scale = scales[b] * kernel.base_scale;
        for (fi, taps) in kernel.taps.iter().enumerate() {
            for oi in 0..geom.out_h {
                let row = ((b * kernel.filters() + fi) * geom.out_h + oi) * geom.out_w;
                for oj in 0..geom.out_w {
                    let mut acc: i64 = 0;
                    for tap in taps {
                        // Decode the tap's position in the [c, k, k] volume.
                        let off = tap.offset as usize;
                        let ch = off / (k * k);
                        let ki = (off / k) % k;
                        let kj = off % k;
                        let ii = (oi * stride + ki) as isize - padding as isize;
                        let jj = (oj * stride + kj) as isize - padding as isize;
                        if ii < 0 || jj < 0 || ii as usize >= h || jj as usize >= w {
                            continue;
                        }
                        let a = codes[((b * c + ch) * h + ii as usize) * w + jj as usize] as i64;
                        let term = a << tap.shift;
                        acc += if tap.negative { -term } else { term };
                        counts.shifts += 1;
                        counts.int_adds += 1;
                    }
                    out[row + oj] = acc as f32 * out_scale;
                }
            }
        }
    }
}

/// Shift-add convolution over integer activation codes.
///
/// Returns the float output `[n, f, oh, ow]` and the operation counts
/// (one shift and one add per tap — no multiplies anywhere).
///
/// # Panics
///
/// Panics on activation/kernel shape mismatches.
pub fn shift_add_conv(
    act: &QuantActivations,
    kernel: &ShiftKernel,
    stride: usize,
    padding: usize,
) -> (Tensor, OpCounts) {
    let ad = act.dims();
    assert_eq!(ad.len(), 4, "activations must be [n, c, h, w]");
    let (n, c, h, w) = (ad[0], ad[1], ad[2], ad[3]);
    let geom = Conv2dGeometry::new(c, h, w, kernel.kernel, stride, padding);
    let mut out = Tensor::zeros(&[n, kernel.filters(), geom.out_h, geom.out_w]);
    let scales = vec![act.scale(); n];
    let mut counts = OpCounts::default();
    shift_add_conv_core(
        act.codes(),
        &scales,
        &geom,
        kernel,
        out.as_mut_slice(),
        &mut counts,
    );
    (out, counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flight_nn::layers::functional::conv2d_forward;
    use flight_tensor::{uniform, TensorRng};
    use flightnn::convert::shift_plan;
    use flightnn::layers::QuantConv2d;
    use flightnn::QuantScheme;

    fn check_scheme(scheme: QuantScheme, seed: u64) {
        let mut rng = TensorRng::seed(seed);
        let mut conv = QuantConv2d::new(&mut rng, &scheme, 3, 4, 3, 1, 1);
        let plan = shift_plan(&mut conv);
        let dims = conv.shadow().value.dims().to_vec();
        let kernel = ShiftKernel::compile(&plan, &dims);

        let x = uniform(&mut rng, &[2, 3, 6, 6], -1.0, 1.0);
        let qa = QuantActivations::quantize(&x, 8);
        let qweights = conv.quantized_weights();

        let (reference, _) = conv2d_forward(
            &qa.dequantize(),
            &qweights,
            &Tensor::zeros(&[4]),
            1,
            1,
            false,
        );
        let (out, counts) = shift_add_conv(&qa, &kernel, 1, 1);
        assert!(
            out.allclose(&reference, 1e-3),
            "shift-add diverges from reference for {}",
            scheme.label()
        );
        assert_eq!(counts.int_mults, 0, "shift kernel must not multiply");
        assert!(counts.shifts > 0);
    }

    #[test]
    fn lightnn1_matches_reference() {
        check_scheme(QuantScheme::l1(), 11);
    }

    #[test]
    fn lightnn2_matches_reference() {
        check_scheme(QuantScheme::l2(), 12);
    }

    #[test]
    fn flightnn_matches_reference() {
        check_scheme(QuantScheme::flight(1e-5), 13);
    }

    #[test]
    fn tap_count_scales_with_k() {
        let mut rng = TensorRng::seed(14);
        let mut c1 = QuantConv2d::new(&mut rng, &QuantScheme::l1(), 2, 4, 3, 1, 1);
        let mut rng = TensorRng::seed(14);
        let mut c2 = QuantConv2d::new(&mut rng, &QuantScheme::l2(), 2, 4, 3, 1, 1);
        let p1 = shift_plan(&mut c1);
        let p2 = shift_plan(&mut c2);
        let k1 = ShiftKernel::compile(&p1, &[4, 2, 3, 3]);
        let k2 = ShiftKernel::compile(&p2, &[4, 2, 3, 3]);
        assert!(
            k2.total_taps() > k1.total_taps(),
            "L-2 should need more shift taps than L-1"
        );
    }

    #[test]
    fn core_with_per_image_scales_matches_solo_images() {
        let mut rng = TensorRng::seed(16);
        let mut conv = QuantConv2d::new(&mut rng, &QuantScheme::l1(), 2, 3, 3, 1, 1);
        let plan = shift_plan(&mut conv);
        let kernel = ShiftKernel::compile(&plan, &[3, 2, 3, 3]);
        let x = uniform(&mut rng, &[3, 2, 6, 6], -1.0, 1.0);

        let mut codes = Vec::new();
        let mut scales = Vec::new();
        QuantActivations::quantize_per_image_into(&x, 8, &mut codes, &mut scales);
        let geom = Conv2dGeometry::new(2, 6, 6, 3, 1, 1);
        let mut out = vec![0.0f32; 3 * kernel.filters() * geom.out_positions()];
        let mut counts = OpCounts::default();
        shift_add_conv_core(&codes, &scales, &geom, &kernel, &mut out, &mut counts);

        // Each image must be bit-identical to submitting it alone.
        let img_out = kernel.filters() * geom.out_positions();
        let mut solo_counts = OpCounts::default();
        for b in 0..3 {
            let img = Tensor::from_vec(x.outer(b).to_vec(), &[1, 2, 6, 6]);
            let qa = QuantActivations::quantize(&img, 8);
            let (solo, c) = shift_add_conv(&qa, &kernel, 1, 1);
            solo_counts += c;
            assert_eq!(
                &out[b * img_out..(b + 1) * img_out],
                solo.as_slice(),
                "image {b} diverges from solo inference"
            );
        }
        assert_eq!(counts, solo_counts, "op counts reduce associatively");
    }

    #[test]
    fn stride_two_matches_reference() {
        let mut rng = TensorRng::seed(15);
        let mut conv = QuantConv2d::new(&mut rng, &QuantScheme::l2(), 2, 3, 3, 2, 1);
        let plan = shift_plan(&mut conv);
        let kernel = ShiftKernel::compile(&plan, &[3, 2, 3, 3]);
        let x = uniform(&mut rng, &[1, 2, 8, 8], -1.0, 1.0);
        let qa = QuantActivations::quantize(&x, 8);
        let (reference, _) = conv2d_forward(
            &qa.dequantize(),
            &conv.quantized_weights(),
            &Tensor::zeros(&[3]),
            2,
            1,
            false,
        );
        let (out, _) = shift_add_conv(&qa, &kernel, 2, 1);
        assert!(out.allclose(&reference, 1e-3));
    }
}
