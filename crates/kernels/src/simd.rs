//! Batch-major SIMD lanes for the lowered tap programs.
//!
//! The lowered interior loops of both integer datapaths (`shift.rs`,
//! `fixed.rs`) are branchless but scalar: one shift/sign/add (or one
//! multiply/add) per tap per output position per image. This module
//! vectorizes them **batch-major**: a lane holds the *same spatial
//! position across [`LANES`] images*, so the tap program — offsets,
//! shift amounts, signs, weights — is identical for every element of
//! the lane and broadcasts across it with no per-lane control flow.
//!
//! That requires a layout change. Activations arrive as per-image
//! planes (`codes[b · chw ..]`, NCHW); the lane kernels read a
//! **batch-blocked, lane-major arena** instead, packed per block of
//! [`LANES`] consecutive images:
//!
//! ```text
//! block[off · LANES + l] == codes[(b0 + l) · chw + off]
//! ```
//!
//! i.e. the flat `(c, h, w)` offset keeps its meaning and the lane
//! index becomes the innermost (unit-stride) dimension, so every tap
//! load is one contiguous 8 × i32 vector. The arena lives in a
//! [`LaneCtx`] owned by the engine's per-worker scratch, and the
//! pack/unpack shims sit at the conv stage boundary — the border ring,
//! activation quantization, and per-image output scales keep their
//! existing scalar layouts.
//!
//! # Dispatch
//!
//! Three paths share the contract "bit-identical to the interpreted
//! reference":
//!
//! * [`KernelPath::Avx2`] — `core::arch` AVX2 intrinsics, i32×8 lanes;
//! * [`KernelPath::Portable`] — the same lane loops over `[i32; LANES]`
//!   arrays in safe Rust (auto-vectorizes on whatever the target has);
//! * [`KernelPath::Scalar`] — the pre-lane per-image path (also the
//!   border/remnant/overflow fallback inside the lane paths).
//!
//! [`active_path`] picks once per process: AVX2 when the CPU has it,
//! unless `FLIGHT_FORCE_SCALAR` pins the scalar path; Portable
//! otherwise. Batches smaller than [`LANES`] and the remnant images of
//! non-multiple batches run the scalar path per image, so logits are
//! invariant under batch composition on every path.
//!
//! # Exactness
//!
//! The scalar cores accumulate in `i64`; the lane cores accumulate in
//! `i32`. They agree bit-for-bit iff the i32 accumulation cannot wrap,
//! which the lowering proves *per call*: each lowered program records
//! the worst-case per-filter magnitude multiplier (`Σ 2^s` over a
//! filter's taps for the shift path, `Σ |w|` for the fixed path), and
//! the runner takes the lane path only when
//! `max |code| · multiplier ≤ i32::MAX`. 8-bit activations with
//! realistic tap programs pass by orders of magnitude; adversarial
//! inputs silently fall back to the scalar path instead of wrapping.

use std::sync::OnceLock;

use crate::lower::InteriorRect;

/// Images per SIMD lane block (i32×8 — one AVX2 register).
pub const LANES: usize = 8;

/// Largest packed shift amount the lane paths accept. Anything bigger
/// would overflow i32 for every nonzero code anyway; the cap also keeps
/// `<<` defined for all-zero planes.
pub(crate) const MAX_LANE_SHIFT: u32 = 30;

/// Environment variable that pins the portable scalar path when set to
/// anything but `0`/empty — the escape hatch for cross-machine perf
/// diffs and for ruling the vectorizer out of a miscompare.
pub const FORCE_SCALAR_ENV: &str = "FLIGHT_FORCE_SCALAR";

/// Which interior implementation a conv call runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelPath {
    /// AVX2 i32×8 lanes over the batch-blocked arena.
    Avx2,
    /// The same lane loops in portable safe Rust (`[i32; LANES]`).
    Portable,
    /// Per-image scalar loops with i64 accumulation — the pre-SIMD
    /// lowered path, and the fallback for borders, remnant images, and
    /// accumulator-overflow risks.
    Scalar,
}

impl KernelPath {
    /// Stable label used in telemetry (`kernel.dispatch.<name>`), run
    /// manifests, and `flightctl summarize`.
    pub fn name(&self) -> &'static str {
        match self {
            KernelPath::Avx2 => "avx2",
            KernelPath::Portable => "portable",
            KernelPath::Scalar => "scalar",
        }
    }
}

impl std::fmt::Display for KernelPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The SIMD-relevant CPU features of the host, for run-manifest `env`
/// blocks (cross-machine perf diffs need to know what the machine
/// could have dispatched to).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuFeatures {
    /// AVX2 (the feature the lane kernels dispatch on).
    pub avx2: bool,
    /// FMA (not used by the integer kernels; recorded for context).
    pub fma: bool,
    /// SSE4.2 (baseline-ish; recorded for context).
    pub sse4_2: bool,
}

impl CpuFeatures {
    /// Comma-joined list of detected features (`"avx2,fma,sse4.2"`),
    /// or `"none"`.
    pub fn label(&self) -> String {
        let mut parts = Vec::new();
        if self.avx2 {
            parts.push("avx2");
        }
        if self.fma {
            parts.push("fma");
        }
        if self.sse4_2 {
            parts.push("sse4.2");
        }
        if parts.is_empty() {
            "none".to_string()
        } else {
            parts.join(",")
        }
    }
}

/// Runtime-detected CPU features of this host (all `false` off x86_64).
pub fn cpu_features() -> CpuFeatures {
    #[cfg(target_arch = "x86_64")]
    {
        CpuFeatures {
            avx2: std::arch::is_x86_feature_detected!("avx2"),
            fma: std::arch::is_x86_feature_detected!("fma"),
            sse4_2: std::arch::is_x86_feature_detected!("sse4.2"),
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        CpuFeatures {
            avx2: false,
            fma: false,
            sse4_2: false,
        }
    }
}

/// Whether [`FORCE_SCALAR_ENV`] pins the scalar path (set and not
/// `"0"`).
pub fn force_scalar_env() -> bool {
    force_scalar_value(std::env::var(FORCE_SCALAR_ENV).ok().as_deref())
}

/// The [`FORCE_SCALAR_ENV`] decision for a raw variable value —
/// factored out so tests can pin it without racing on the process
/// environment.
pub fn force_scalar_value(value: Option<&str>) -> bool {
    matches!(value, Some(v) if !v.is_empty() && v != "0")
}

/// One fresh dispatch decision: the environment override, then CPU
/// detection. Prefer [`active_path`], which caches this per process.
pub fn detect_path() -> KernelPath {
    if force_scalar_env() {
        return KernelPath::Scalar;
    }
    if cpu_features().avx2 {
        KernelPath::Avx2
    } else {
        KernelPath::Portable
    }
}

/// The process-wide dispatch decision (detected once, then cached).
pub fn active_path() -> KernelPath {
    static PATH: OnceLock<KernelPath> = OnceLock::new();
    *PATH.get_or_init(detect_path)
}

/// Per-worker lane state: the dispatch decision plus the batch-blocked
/// activation arena the lane kernels read. Owned by the engine's
/// scratch (one per worker / [`ExecCtx`](crate::ExecCtx)) so the arena
/// grows to the largest conv stage once and is reused from then on.
#[derive(Debug, Clone)]
pub struct LaneCtx {
    path: KernelPath,
    /// Lane-major blocked codes for the block being processed
    /// (`chw · LANES` elements; see the module docs for the layout).
    pub(crate) block: Vec<i32>,
}

impl LaneCtx {
    /// A context on the process-wide [`active_path`].
    pub fn new() -> Self {
        LaneCtx::with_path(active_path())
    }

    /// A context pinned to `path` (tests, benches, and the engine's
    /// `force_scalar` compile option).
    pub fn with_path(path: KernelPath) -> Self {
        LaneCtx {
            path,
            block: Vec::new(),
        }
    }

    /// The dispatch decision this context requests (the lowered runner
    /// may still fall back to [`KernelPath::Scalar`] per call).
    pub fn path(&self) -> KernelPath {
        self.path
    }

    /// Re-pins the dispatch decision.
    pub fn set_path(&mut self, path: KernelPath) {
        self.path = path;
    }
}

impl Default for LaneCtx {
    fn default() -> Self {
        LaneCtx::new()
    }
}

/// Packs [`LANES`] consecutive images' planes into the lane-major
/// blocked layout: `block[off · LANES + l] = codes[l · chw + off]`.
/// `codes` holds exactly the block's images, planar.
pub(crate) fn pack_lane_block(codes: &[i32], chw: usize, block: &mut Vec<i32>) {
    debug_assert_eq!(codes.len(), chw * LANES);
    block.clear();
    block.resize(chw * LANES, 0);
    for off in 0..chw {
        let dst = &mut block[off * LANES..(off + 1) * LANES];
        for (l, slot) in dst.iter_mut().enumerate() {
            *slot = codes[l * chw + off];
        }
    }
}

/// The geometry a lane rect runner needs: the interior rectangle plus
/// the strides that turn an output position into a window origin.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BlockGeom {
    pub rect: InteriorRect,
    pub stride: usize,
    pub padding: usize,
    pub in_w: usize,
    pub out_w: usize,
}

use crate::shift::SHIFT_MASK;

/// Runs one filter's shift taps over the interior rectangle of one
/// lane block, dispatching on `path` ([`KernelPath::Scalar`] is the
/// caller's responsibility and never reaches here).
///
/// `filter_base` is the flat output index of `(b0, fi, 0, 0)` and
/// `img_stride` the per-image output stride `f · oh · ow`, so lane `l`
/// of position `(oi, oj)` lands at
/// `filter_base + l · img_stride + oi · out_w + oj`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_shift_rect(
    path: KernelPath,
    block: &[i32],
    offs: &[u32],
    codes: &[u32],
    g: &BlockGeom,
    out: &mut [f32],
    filter_base: usize,
    img_stride: usize,
    out_scales: &[f32; LANES],
) {
    match path {
        #[cfg(target_arch = "x86_64")]
        KernelPath::Avx2 => unsafe {
            // Safety: dispatch only selects Avx2 after
            // `is_x86_feature_detected!("avx2")`.
            avx2::shift_rect(
                block,
                offs,
                codes,
                g,
                out,
                filter_base,
                img_stride,
                out_scales,
            )
        },
        _ => shift_rect_portable(
            block,
            offs,
            codes,
            g,
            out,
            filter_base,
            img_stride,
            out_scales,
        ),
    }
}

/// Runs one filter's dense fixed-point taps over the interior
/// rectangle of one lane block (see [`run_shift_rect`] for the output
/// indexing contract). `weights` is the filter's `c · k · k` codes,
/// parallel to `offs`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_fixed_rect(
    path: KernelPath,
    block: &[i32],
    offs: &[u32],
    weights: &[i32],
    g: &BlockGeom,
    out: &mut [f32],
    filter_base: usize,
    img_stride: usize,
    out_scales: &[f32; LANES],
) {
    match path {
        #[cfg(target_arch = "x86_64")]
        KernelPath::Avx2 => unsafe {
            // Safety: dispatch only selects Avx2 after
            // `is_x86_feature_detected!("avx2")`.
            avx2::fixed_rect(
                block,
                offs,
                weights,
                g,
                out,
                filter_base,
                img_stride,
                out_scales,
            )
        },
        _ => fixed_rect_portable(
            block,
            offs,
            weights,
            g,
            out,
            filter_base,
            img_stride,
            out_scales,
        ),
    }
}

/// The portable lane implementation of the shift interior: identical
/// loop structure to the AVX2 version, over `[i32; LANES]` arrays the
/// compiler is free to auto-vectorize.
#[allow(clippy::too_many_arguments)]
fn shift_rect_portable(
    block: &[i32],
    offs: &[u32],
    codes: &[u32],
    g: &BlockGeom,
    out: &mut [f32],
    filter_base: usize,
    img_stride: usize,
    out_scales: &[f32; LANES],
) {
    for oi in g.rect.oi_lo..g.rect.oi_hi {
        let in_row = (oi * g.stride - g.padding) * g.in_w;
        let out_row = filter_base + oi * g.out_w;
        for oj in g.rect.oj_lo..g.rect.oj_hi {
            let base = in_row + oj * g.stride - g.padding;
            let mut acc = [0i32; LANES];
            for (&o, &cd) in offs.iter().zip(codes) {
                let p = (base + o as usize) * LANES;
                let s = cd & SHIFT_MASK;
                let m = (cd as i32) >> 31;
                let lanes: &[i32; LANES] = block[p..p + LANES].try_into().expect("lane width");
                for l in 0..LANES {
                    let term = lanes[l] << s;
                    acc[l] += (term ^ m) - m;
                }
            }
            for (l, &scale) in out_scales.iter().enumerate() {
                out[out_row + oj + l * img_stride] = acc[l] as f32 * scale;
            }
        }
    }
}

/// The portable lane implementation of the fixed-point interior.
#[allow(clippy::too_many_arguments)]
fn fixed_rect_portable(
    block: &[i32],
    offs: &[u32],
    weights: &[i32],
    g: &BlockGeom,
    out: &mut [f32],
    filter_base: usize,
    img_stride: usize,
    out_scales: &[f32; LANES],
) {
    for oi in g.rect.oi_lo..g.rect.oi_hi {
        let in_row = (oi * g.stride - g.padding) * g.in_w;
        let out_row = filter_base + oi * g.out_w;
        for oj in g.rect.oj_lo..g.rect.oj_hi {
            let base = in_row + oj * g.stride - g.padding;
            let mut acc = [0i32; LANES];
            for (&o, &wv) in offs.iter().zip(weights) {
                let p = (base + o as usize) * LANES;
                let lanes: &[i32; LANES] = block[p..p + LANES].try_into().expect("lane width");
                for l in 0..LANES {
                    acc[l] += lanes[l] * wv;
                }
            }
            for (l, &scale) in out_scales.iter().enumerate() {
                out[out_row + oj + l * img_stride] = acc[l] as f32 * scale;
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! The AVX2 lane kernels. Each function carries
    //! `#[target_feature(enable = "avx2")]` and must only be reached
    //! through the runtime-detected dispatch in the parent module.

    use core::arch::x86_64::*;

    use super::{BlockGeom, LANES};
    use crate::shift::SHIFT_MASK;

    /// One filter's shift taps over the interior rect, i32×8.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn shift_rect(
        block: &[i32],
        offs: &[u32],
        codes: &[u32],
        g: &BlockGeom,
        out: &mut [f32],
        filter_base: usize,
        img_stride: usize,
        out_scales: &[f32; LANES],
    ) {
        let src = block.as_ptr();
        for oi in g.rect.oi_lo..g.rect.oi_hi {
            let in_row = (oi * g.stride - g.padding) * g.in_w;
            let out_row = filter_base + oi * g.out_w;
            for oj in g.rect.oj_lo..g.rect.oj_hi {
                let base = in_row + oj * g.stride - g.padding;
                let mut acc = _mm256_setzero_si256();
                for (&o, &cd) in offs.iter().zip(codes) {
                    let p = (base + o as usize) * LANES;
                    debug_assert!(p + LANES <= block.len());
                    let v = _mm256_loadu_si256(src.add(p) as *const __m256i);
                    // `a << s`, the same shift for every lane.
                    let count = _mm_cvtsi32_si128((cd & SHIFT_MASK) as i32);
                    let term = _mm256_sll_epi32(v, count);
                    // Branchless sign fold: `(term ^ m) - m` with
                    // `m = 0` (add) or `m = -1` (subtract).
                    let m = _mm256_set1_epi32((cd as i32) >> 31);
                    let signed = _mm256_sub_epi32(_mm256_xor_si256(term, m), m);
                    acc = _mm256_add_epi32(acc, signed);
                }
                let mut lanes = [0i32; LANES];
                _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
                for (l, &scale) in out_scales.iter().enumerate() {
                    out[out_row + oj + l * img_stride] = lanes[l] as f32 * scale;
                }
            }
        }
    }

    /// One filter's dense fixed-point taps over the interior rect,
    /// i32×8 multiplies (`vpmulld`).
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn fixed_rect(
        block: &[i32],
        offs: &[u32],
        weights: &[i32],
        g: &BlockGeom,
        out: &mut [f32],
        filter_base: usize,
        img_stride: usize,
        out_scales: &[f32; LANES],
    ) {
        let src = block.as_ptr();
        for oi in g.rect.oi_lo..g.rect.oi_hi {
            let in_row = (oi * g.stride - g.padding) * g.in_w;
            let out_row = filter_base + oi * g.out_w;
            for oj in g.rect.oj_lo..g.rect.oj_hi {
                let base = in_row + oj * g.stride - g.padding;
                let mut acc = _mm256_setzero_si256();
                for (&o, &wv) in offs.iter().zip(weights) {
                    let p = (base + o as usize) * LANES;
                    debug_assert!(p + LANES <= block.len());
                    let v = _mm256_loadu_si256(src.add(p) as *const __m256i);
                    let w = _mm256_set1_epi32(wv);
                    acc = _mm256_add_epi32(acc, _mm256_mullo_epi32(v, w));
                }
                let mut lanes = [0i32; LANES];
                _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
                for (l, &scale) in out_scales.iter().enumerate() {
                    out[out_row + oj + l * img_stride] = lanes[l] as f32 * scale;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn force_scalar_value_semantics() {
        assert!(!force_scalar_value(None));
        assert!(!force_scalar_value(Some("")));
        assert!(!force_scalar_value(Some("0")));
        assert!(force_scalar_value(Some("1")));
        assert!(force_scalar_value(Some("true")));
    }

    #[test]
    fn detected_path_is_consistent_with_features() {
        // Whatever this host is, the cached decision must agree with a
        // fresh detection and never pick AVX2 without the feature.
        let path = active_path();
        assert_eq!(path, detect_path());
        if path == KernelPath::Avx2 {
            assert!(cpu_features().avx2);
        }
    }

    #[test]
    fn feature_label_is_stable() {
        let all = CpuFeatures {
            avx2: true,
            fma: true,
            sse4_2: true,
        };
        assert_eq!(all.label(), "avx2,fma,sse4.2");
        let none = CpuFeatures {
            avx2: false,
            fma: false,
            sse4_2: false,
        };
        assert_eq!(none.label(), "none");
    }

    #[test]
    fn pack_is_the_lane_major_transpose() {
        // 2 "pixels" per image: block must interleave images.
        let chw = 2;
        let codes: Vec<i32> = (0..(LANES * chw) as i32).collect();
        let mut block = Vec::new();
        pack_lane_block(&codes, chw, &mut block);
        for off in 0..chw {
            for l in 0..LANES {
                assert_eq!(
                    block[off * LANES + l],
                    codes[l * chw + off],
                    "off {off} lane {l}"
                );
            }
        }
    }

    #[test]
    fn path_names_round_trip_through_display() {
        for path in [KernelPath::Avx2, KernelPath::Portable, KernelPath::Scalar] {
            assert_eq!(path.to_string(), path.name());
        }
    }
}
