//! Whole-network integer inference.
//!
//! [`IntNetwork::compile`] lowers a trained
//! [`QuantNet`](flightnn::QuantNet) into a deployment pipeline where
//! every convolution and fully connected layer runs on the integer
//! kernels of this crate — shift-add for (F)LightNN weights, integer
//! multiply for fixed-point weights — and everything else (batch norm
//! with running statistics, LeakyReLU, pooling) runs as cheap float
//! glue, exactly as an accelerator would keep them in wider fixed point.
//!
//! Batch-norm layers can optionally be folded into per-channel affine
//! scale/bias applied to the conv output
//! ([`IntNetwork::compile_folded`]), which is the standard deployment
//! transform; folded and unfolded pipelines produce identical results.
//!
//! The compiled network reports aggregate [`OpCounts`], so a single
//! forward pass measures exactly how many shifts/multiplies/adds the
//! model costs — the numbers the ASIC energy model prices.

use flight_nn::layers::MaxPool2d;
use flight_telemetry::Telemetry;
use flight_tensor::Tensor;
use flightnn::convert::shift_plan;
use flightnn::layers::{QuantConv2d, QuantLinear};
use flightnn::net::{NetLayer, QuantNet};

use crate::counts::OpCounts;
use crate::fixed::FixedWeights;
use crate::qact::QuantActivations;
use crate::shift::{shift_add_conv, ShiftKernel};
use crate::{fixed_point_conv};

/// How a compiled conv/linear layer multiplies.
#[derive(Debug, Clone)]
enum IntWeights {
    /// Shift-add taps ((F)LightNN).
    Shift(ShiftKernel),
    /// Integer multiplies (fixed-point baseline).
    Fixed(FixedWeights),
    /// Float fallback (full-precision models; kept so any `QuantNet`
    /// compiles).
    Float(Tensor),
}

#[derive(Debug, Clone)]
enum IntLayer {
    Conv {
        weights: IntWeights,
        bias: Tensor,
        stride: usize,
        padding: usize,
        act_bits: u32,
    },
    /// Per-channel `y = scale·x + bias` (a batch norm at inference time,
    /// possibly folded away into the conv epilogue).
    Affine { scale: Tensor, bias: Tensor },
    LeakyRelu { slope: f32 },
    MaxPool { window: usize },
    GlobalAvgPool,
    Flatten,
    Linear {
        weights: IntWeights,
        bias: Tensor,
        act_bits: u32,
    },
    Residual {
        main: Vec<IntLayer>,
        shortcut: Option<Vec<IntLayer>>,
        slope: f32,
    },
    /// Activation requantization markers are free at run time (the conv
    /// entry quantizes its own input) but kept for shape fidelity.
    Requant,
}

/// Errors from [`IntNetwork::compile`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// A plain layer the compiler does not recognize.
    UnsupportedLayer(String),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::UnsupportedLayer(name) => {
                write!(f, "cannot compile layer '{name}' to the integer pipeline")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// A `QuantNet` lowered to integer execution.
///
/// # Example
///
/// ```
/// use flight_kernels::IntNetwork;
/// use flight_nn::Layer;
/// use flight_tensor::{Tensor, TensorRng};
/// use flightnn::{configs::NetworkConfig, QuantScheme};
///
/// # fn main() -> Result<(), flight_kernels::engine::CompileError> {
/// let mut rng = TensorRng::seed(0);
/// let mut net = NetworkConfig::by_id(1)
///     .build(&QuantScheme::l1(), &mut rng, 10, [3, 16, 16], 0.25);
/// let engine = IntNetwork::compile(&mut net)?;
/// let x = Tensor::zeros(&[1, 3, 16, 16]);
/// let (logits, counts) = engine.forward(&x);
/// assert_eq!(logits.dims(), &[1, 10]);
/// assert_eq!(counts.int_mults, 0); // multiplier-free
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct IntNetwork {
    layers: Vec<IntLayer>,
    telemetry: Telemetry,
}

impl IntNetwork {
    /// Compiles a trained network, keeping batch norms as explicit
    /// affine stages.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::UnsupportedLayer`] for plain layers the
    /// integer pipeline does not know (none are produced by
    /// [`NetworkConfig::build`](flightnn::configs::NetworkConfig::build)).
    pub fn compile(net: &mut QuantNet) -> Result<Self, CompileError> {
        let layers = compile_layers(net)?;
        Ok(IntNetwork {
            layers,
            telemetry: Telemetry::null(),
        })
    }

    /// Compiles with batch norms folded into the preceding conv's
    /// affine epilogue where possible (standard deployment transform).
    ///
    /// # Errors
    ///
    /// Same as [`IntNetwork::compile`].
    pub fn compile_folded(net: &mut QuantNet) -> Result<Self, CompileError> {
        let mut layers = compile_layers(net)?;
        fold_affines(&mut layers);
        Ok(IntNetwork {
            layers,
            telemetry: Telemetry::null(),
        })
    }

    /// Attaches a telemetry handle (default: the null sink). With a live
    /// sink, [`IntNetwork::forward`] emits a `kernel.forward` span plus a
    /// per-stage latency span and per-stage op counters.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Replaces the telemetry handle in place.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Number of pipeline stages (after folding, if any).
    pub fn stages(&self) -> usize {
        self.layers.len()
    }

    /// Runs the integer pipeline on a float input batch, returning the
    /// logits and the aggregate integer-op counts of this pass.
    ///
    /// When a live telemetry sink is attached the pass is bracketed by a
    /// `kernel.forward` span, and every pipeline stage `i` emits a
    /// `kernel.stage.<i>.<kind>` span plus one counter per nonzero
    /// [`OpCounts`] field that stage spent. With the default null sink
    /// this is exactly [`IntNetwork::forward_untraced`].
    pub fn forward(&self, input: &Tensor) -> (Tensor, OpCounts) {
        if !self.telemetry.enabled() {
            return self.forward_untraced(input);
        }
        let forward_span = self.telemetry.span("kernel.forward");
        let mut counts = OpCounts::default();
        let mut x = input.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            let before = counts;
            let name = format!("kernel.stage.{i:02}.{}", stage_kind(layer));
            let stage_span = self.telemetry.span(&name);
            x = run_layer(layer, &x, &mut counts);
            drop(stage_span);
            for (field, n) in counts.delta(before).fields() {
                if n > 0 {
                    self.telemetry.counter(&format!("{name}.{field}"), n, "op");
                }
            }
        }
        drop(forward_span);
        (x, counts)
    }

    /// The uninstrumented pipeline: no telemetry branches at all. This is
    /// both the hot path `forward` delegates to when the sink is disabled
    /// and the baseline the `telemetry_overhead` criterion bench compares
    /// against.
    pub fn forward_untraced(&self, input: &Tensor) -> (Tensor, OpCounts) {
        let mut counts = OpCounts::default();
        let out = run_layers(&self.layers, input, &mut counts);
        (out, counts)
    }
}

/// Short stage label used in telemetry event names.
fn stage_kind(layer: &IntLayer) -> &'static str {
    match layer {
        IntLayer::Conv { .. } => "conv",
        IntLayer::Affine { .. } => "affine",
        IntLayer::LeakyRelu { .. } => "leaky_relu",
        IntLayer::MaxPool { .. } => "maxpool",
        IntLayer::GlobalAvgPool => "global_avg_pool",
        IntLayer::Flatten => "flatten",
        IntLayer::Linear { .. } => "linear",
        IntLayer::Residual { .. } => "residual",
        IntLayer::Requant => "requant",
    }
}

fn compile_layers(net: &mut QuantNet) -> Result<Vec<IntLayer>, CompileError> {
    let mut out = Vec::new();
    for layer in net.layers_mut() {
        match layer {
            NetLayer::Conv(conv) => out.push(compile_conv(conv)),
            NetLayer::Linear(lin) => out.push(compile_linear(lin)),
            NetLayer::Residual(block) => {
                let main = compile_layers(block.main_mut())?;
                let shortcut = match block.shortcut_mut() {
                    Some(sc) => Some(compile_layers(sc)?),
                    None => None,
                };
                out.push(IntLayer::Residual {
                    main,
                    shortcut,
                    slope: 0.01,
                });
            }
            NetLayer::Plain(boxed) => {
                let any: &mut dyn flight_nn::Layer = boxed.as_mut();
                let name = any.name();
                if name.starts_with("batchnorm2d") {
                    // Downcast-free extraction: rebuild the affine from a
                    // second forward pass is fragile; instead we re-read
                    // the known concrete types via trait-object name +
                    // unsafe-free re-dispatch below.
                    out.push(compile_batchnorm_by_probe(any, &name)?);
                } else if let Some(slope) = parse_leaky(&name) {
                    out.push(IntLayer::LeakyRelu { slope });
                } else if let Some(win) = parse_pool(&name) {
                    out.push(IntLayer::MaxPool { window: win });
                } else if name == "global_avg_pool" {
                    out.push(IntLayer::GlobalAvgPool);
                } else if name == "flatten" {
                    out.push(IntLayer::Flatten);
                } else if name.starts_with("act_quant") {
                    out.push(IntLayer::Requant);
                } else {
                    return Err(CompileError::UnsupportedLayer(name));
                }
            }
        }
    }
    Ok(out)
}

/// Extracts the inference-time affine of a batch norm by probing it with
/// basis inputs: for eval-mode BN, `y = a·x + b` per channel, so `b =
/// BN(0)` and `a = BN(1) − b`. This keeps the compiler decoupled from the
/// layer's private fields.
fn compile_batchnorm_by_probe(
    layer: &mut dyn flight_nn::Layer,
    name: &str,
) -> Result<IntLayer, CompileError> {
    let channels: usize = name
        .trim_start_matches("batchnorm2d(")
        .trim_end_matches(')')
        .parse()
        .map_err(|_| CompileError::UnsupportedLayer(name.to_string()))?;
    let zeros = Tensor::zeros(&[1, channels, 1, 1]);
    let ones = Tensor::ones(&[1, channels, 1, 1]);
    let b = layer.forward(&zeros, false);
    let a_plus_b = layer.forward(&ones, false);
    let scale = &a_plus_b - &b;
    Ok(IntLayer::Affine {
        scale: scale.reshape(&[channels]),
        bias: b.reshape(&[channels]),
    })
}

fn parse_leaky(name: &str) -> Option<f32> {
    name.strip_prefix("leaky_relu(")?
        .trim_end_matches(')')
        .parse()
        .ok()
}

fn parse_pool(name: &str) -> Option<usize> {
    let inner = name.strip_prefix("maxpool2d(")?.trim_end_matches(')');
    inner.split('x').next()?.parse().ok()
}

fn compile_conv(conv: &mut QuantConv2d) -> IntLayer {
    // Re-quantize: the layer's cache may be stale from the last training
    // step (the shadow weights moved after the last forward pass).
    let q = conv.quantize_weights();
    let counts = conv.filter_shift_counts();
    let weights = if counts.is_empty() {
        // Full or fixed-point scheme: distinguish by checking whether the
        // quantized weights differ from the shadow (fixed-point quantizes,
        // full passes through).
        if q == conv.shadow().value {
            IntWeights::Float(q)
        } else {
            IntWeights::Fixed(FixedWeights::quantize(&conv.shadow().value, 4))
        }
    } else {
        let plan = shift_plan(conv);
        IntWeights::Shift(ShiftKernel::compile(&plan, conv.shadow().value.dims()))
    };
    IntLayer::Conv {
        weights,
        bias: conv.bias().value.clone(),
        stride: conv.stride(),
        padding: conv.padding(),
        act_bits: 8,
    }
}

fn compile_linear(lin: &mut QuantLinear) -> IntLayer {
    let q = lin.quantize_weights();
    let counts = lin.row_shift_counts();
    let dims = q.dims().to_vec();
    let weights = if counts.is_empty() {
        if q == lin.shadow().value {
            // Full precision: lift [out, in] to a 1x1 conv weight.
            IntWeights::Float(q.reshape(&[dims[0], dims[1], 1, 1]))
        } else {
            // 4-bit fixed point, reshaped to a 1x1 conv weight.
            let w4 = lin.shadow().value.reshape(&[dims[0], dims[1], 1, 1]);
            IntWeights::Fixed(FixedWeights::quantize(&w4, 4))
        }
    } else {
        // A linear layer is a 1×1 conv on a 1×1 image.
        let plan = flightnn::convert::shift_plan_for(&q, &counts);
        IntWeights::Shift(ShiftKernel::compile(&plan, &[dims[0], dims[1], 1, 1]))
    };
    IntLayer::Linear {
        weights,
        bias: lin.bias().value.clone(),
        act_bits: 8,
    }
}

/// Folds the bias of every `Conv` directly followed by an `Affine` into
/// that affine: `a·(conv + bias) + b = a·conv + (a·bias + b)`. The conv
/// epilogue then adds nothing (its bias is zeroed), which is the standard
/// batch-norm-folding deployment transform; results are bit-identical.
fn fold_affines(layers: &mut Vec<IntLayer>) {
    let mut i = 0;
    while i + 1 < layers.len() {
        let fold = matches!(
            (&layers[i], &layers[i + 1]),
            (IntLayer::Conv { .. }, IntLayer::Affine { .. })
        );
        if fold {
            // Take the conv bias out, rewrite the affine bias.
            let conv_bias = if let IntLayer::Conv { bias, .. } = &mut layers[i] {
                std::mem::replace(bias, Tensor::zeros(bias.dims()))
            } else {
                unreachable!("checked above")
            };
            if let IntLayer::Affine { scale, bias } = &mut layers[i + 1] {
                let new_bias: Vec<f32> = conv_bias
                    .as_slice()
                    .iter()
                    .zip(scale.as_slice())
                    .zip(bias.as_slice())
                    .map(|((&cb, &a), &b)| a * cb + b)
                    .collect();
                *bias = Tensor::from_slice(&new_bias);
            }
        }
        i += 1;
    }
    // Recurse into residual blocks.
    for layer in layers.iter_mut() {
        if let IntLayer::Residual { main, shortcut, .. } = layer {
            fold_affines(main);
            if let Some(sc) = shortcut {
                fold_affines(sc);
            }
        }
    }
}

fn run_layers(layers: &[IntLayer], input: &Tensor, counts: &mut OpCounts) -> Tensor {
    let mut x = input.clone();
    for layer in layers {
        x = run_layer(layer, &x, counts);
    }
    x
}

fn run_layer(layer: &IntLayer, x: &Tensor, counts: &mut OpCounts) -> Tensor {
    match layer {
        IntLayer::Conv {
            weights,
            bias,
            stride,
            padding,
            act_bits,
        } => {
            let qa = QuantActivations::quantize(x, *act_bits);
            let (mut out, c) = match weights {
                IntWeights::Shift(kernel) => shift_add_conv(&qa, kernel, *stride, *padding),
                IntWeights::Fixed(fw) => fixed_point_conv(&qa, fw, *stride, *padding),
                IntWeights::Float(w) => {
                    let (o, _) = flight_nn::layers::functional::conv2d_forward(
                        x,
                        w,
                        &Tensor::zeros(&[w.dims()[0]]),
                        *stride,
                        *padding,
                        false,
                    );
                    // macs = weights × output positions × batch.
                    let filters = w.dims()[0];
                    let macs = (w.len() * o.len() / filters.max(1)) as u64;
                    (
                        o,
                        OpCounts {
                            float_mults: macs,
                            float_adds: macs,
                            ..OpCounts::default()
                        },
                    )
                }
            };
            *counts = counts.merged(c);
            add_channel_bias(&mut out, bias);
            out
        }
        IntLayer::Linear {
            weights,
            bias,
            act_bits,
        } => {
            // Lift [n, f] to [n, f, 1, 1] and reuse the conv kernels.
            let n = x.dims()[0];
            let f = x.len() / n.max(1);
            let as_img = x.reshape(&[n, f, 1, 1]);
            let lifted = IntLayer::Conv {
                weights: weights.clone(),
                bias: bias.clone(),
                stride: 1,
                padding: 0,
                act_bits: *act_bits,
            };
            let out = run_layer(&lifted, &as_img, counts);
            let classes = out.len() / n.max(1);
            out.reshape(&[n, classes])
        }
        IntLayer::Affine { scale, bias } => {
            let mut out = x.clone();
            scale_channels(&mut out, scale, bias);
            out
        }
        IntLayer::LeakyRelu { slope } => {
            let s = *slope;
            x.map(|v| if v > 0.0 { v } else { s * v })
        }
        IntLayer::MaxPool { window } => {
            let mut pool = MaxPool2d::new(*window);
            flight_nn::Layer::forward(&mut pool, x, false)
        }
        IntLayer::GlobalAvgPool => {
            let mut gap = flight_nn::layers::GlobalAvgPool::new();
            flight_nn::Layer::forward(&mut gap, x, false)
        }
        IntLayer::Flatten => {
            let n = x.dims()[0];
            x.reshape(&[n, x.len() / n.max(1)])
        }
        IntLayer::Requant => {
            QuantActivations::quantize(x, 8).dequantize()
        }
        IntLayer::Residual {
            main,
            shortcut,
            slope,
        } => {
            let main_out = run_layers(main, x, counts);
            let short_out = match shortcut {
                Some(sc) => run_layers(sc, x, counts),
                None => x.clone(),
            };
            let sum = &main_out + &short_out;
            let s = *slope;
            sum.map(|v| if v > 0.0 { v } else { s * v })
        }
    }
}

fn add_channel_bias(out: &mut Tensor, bias: &Tensor) {
    let (n, c) = (out.dims()[0], out.dims()[1]);
    let plane = out.len() / (n * c).max(1);
    for b in 0..n {
        for ch in 0..c {
            let add = bias.as_slice()[ch];
            let base = (b * c + ch) * plane;
            for v in &mut out.as_mut_slice()[base..base + plane] {
                *v += add;
            }
        }
    }
}

fn scale_channels(out: &mut Tensor, scale: &Tensor, bias: &Tensor) {
    let (n, c) = (out.dims()[0], out.dims()[1]);
    let plane = out.len() / (n * c).max(1);
    for b in 0..n {
        for ch in 0..c {
            let (a, bb) = (scale.as_slice()[ch], bias.as_slice()[ch]);
            let base = (b * c + ch) * plane;
            for v in &mut out.as_mut_slice()[base..base + plane] {
                *v = a * *v + bb;
            }
        }
    }
}

// Tests live in tests/engine.rs (they need trained networks and are
// slower than unit scale).
