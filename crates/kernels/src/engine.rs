//! Whole-network integer inference.
//!
//! [`IntNetwork::compile_with`] lowers a trained
//! [`QuantNet`](flightnn::QuantNet) into a deployment pipeline where
//! every convolution and fully connected layer runs on the integer
//! kernels of this crate — shift-add for (F)LightNN weights, integer
//! multiply for fixed-point weights — and everything else (batch norm
//! with running statistics, LeakyReLU, pooling) runs as cheap float
//! glue, exactly as an accelerator would keep them in wider fixed point.
//!
//! Compilation is configured through [`CompileOptions`]: batch-norm
//! folding (the standard deployment transform — folded and unfolded
//! pipelines produce identical results), a telemetry handle, and an
//! [`ExecutionPolicy`] selecting sequential or multi-threaded batched
//! execution. A single [`IntNetwork::forward`] dispatches internally to
//! the traced/untraced and sequential/parallel paths.
//!
//! The engine surface is split **request-first**: [`CompiledNet`] is the
//! immutable, `Send + Sync` compile-time half (the lowered stage list)
//! and [`ExecCtx`] is the per-call half (scratch arenas + telemetry).
//! N concurrent callers share one `Arc<CompiledNet>` and bring their own
//! `ExecCtx` — the shape a long-running inference service needs, and
//! what makes hot model swap a plain atomic `Arc` publish.
//! [`IntNetwork`] wraps the pair up for single-owner callers.
//!
//! Activations are quantized with one scale **per image**, so each
//! image's integer pipeline is independent of its batchmates. That is
//! what makes the parallel path bit-identical to the sequential one (and
//! logits invariant under batch composition): splitting the batch across
//! workers cannot change any image's quantization grid.
//!
//! The compiled network reports aggregate [`OpCounts`], so a single
//! forward pass measures exactly how many shifts/multiplies/adds the
//! model costs — the numbers the ASIC energy model prices.

use flight_nn::layers::MaxPool2d;
use flight_telemetry::{StageSample, Telemetry};
use flight_tensor::{Conv2dGeometry, Tensor};
use flightnn::convert::shift_plan;
use flightnn::layers::{QuantConv2d, QuantLinear};
use flightnn::net::{NetLayer, QuantNet};

use crate::counts::OpCounts;
use crate::exec::{forward_parallel, Scratch};
use crate::fixed::{fixed_point_conv_core, FixedWeights};
use crate::qact::QuantActivations;
use crate::shift::{shift_add_conv_core, ShiftKernel};
use crate::simd::{active_path, KernelPath};

/// How a compiled conv/linear layer multiplies.
#[derive(Debug, Clone)]
pub(crate) enum IntWeights {
    /// Shift-add taps ((F)LightNN).
    Shift(ShiftKernel),
    /// Integer multiplies (fixed-point baseline).
    Fixed(FixedWeights),
    /// Float fallback (full-precision models; kept so any `QuantNet`
    /// compiles).
    Float(Tensor),
}

#[derive(Debug, Clone)]
pub(crate) enum IntLayer {
    Conv {
        weights: IntWeights,
        bias: Tensor,
        stride: usize,
        padding: usize,
        act_bits: u32,
    },
    /// Per-channel `y = scale·x + bias` (a batch norm at inference time,
    /// possibly folded away into the conv epilogue).
    Affine {
        scale: Tensor,
        bias: Tensor,
    },
    LeakyRelu {
        slope: f32,
    },
    MaxPool {
        window: usize,
    },
    GlobalAvgPool,
    Flatten,
    Linear {
        weights: IntWeights,
        bias: Tensor,
        act_bits: u32,
    },
    Residual {
        main: Vec<IntLayer>,
        shortcut: Option<Vec<IntLayer>>,
        slope: f32,
    },
    /// Activation requantization markers are free at run time (the conv
    /// entry quantizes its own input) but kept for shape fidelity.
    Requant,
}

/// Errors from [`IntNetwork::compile_with`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// A plain layer the compiler does not recognize.
    UnsupportedLayer(String),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::UnsupportedLayer(name) => {
                write!(f, "cannot compile layer '{name}' to the integer pipeline")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// How [`IntNetwork::forward`] walks a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionPolicy {
    /// One thread, image after image — deterministic stage-by-stage
    /// tracing (per-stage spans and counters when telemetry is live).
    Sequential,
    /// Split the batch into contiguous image chunks on a crossbeam
    /// scoped-thread pool. `threads == 0` means "use every available
    /// core" (`std::thread::available_parallelism`). The worker count is
    /// additionally capped by the batch size, and batches of one image
    /// fall back to the sequential path.
    Parallel {
        /// Upper bound on worker threads; 0 = auto.
        threads: usize,
    },
}

impl Default for ExecutionPolicy {
    /// Parallel with auto-sized thread count.
    fn default() -> Self {
        ExecutionPolicy::Parallel { threads: 0 }
    }
}

impl ExecutionPolicy {
    /// Worker threads this policy engages for a batch of `batch` images
    /// (1 means "run sequentially").
    pub fn worker_count(&self, batch: usize) -> usize {
        match *self {
            ExecutionPolicy::Sequential => 1,
            ExecutionPolicy::Parallel { threads } => {
                let limit = if threads == 0 {
                    std::thread::available_parallelism()
                        .map(|p| p.get())
                        .unwrap_or(1)
                } else {
                    threads
                };
                limit.min(batch).max(1)
            }
        }
    }
}

/// Builder for [`IntNetwork::compile_with`]: batch-norm folding, the
/// telemetry handle, and the execution policy in one place.
///
/// ```
/// use flight_kernels::{CompileOptions, ExecutionPolicy};
/// use flight_telemetry::Telemetry;
///
/// let options = CompileOptions::new()
///     .fold_batch_norm(true)
///     .telemetry(Telemetry::from_env())
///     .policy(ExecutionPolicy::Parallel { threads: 4 });
/// assert!(options.folds_batch_norm());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CompileOptions {
    fold_batch_norm: bool,
    telemetry: Telemetry,
    policy: ExecutionPolicy,
    force_scalar: bool,
}

impl CompileOptions {
    /// The defaults: no batch-norm folding, null telemetry, parallel
    /// execution with auto-sized thread count.
    pub fn new() -> Self {
        CompileOptions::default()
    }

    /// Folds batch norms into the preceding conv's affine epilogue
    /// (bit-identical results, fewer stages).
    pub fn fold_batch_norm(mut self, fold: bool) -> Self {
        self.fold_batch_norm = fold;
        self
    }

    /// Attaches a telemetry handle (default: the null sink).
    pub fn telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Sets the execution policy.
    pub fn policy(mut self, policy: ExecutionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Shorthand for `policy(ExecutionPolicy::Parallel { threads })`.
    pub fn threads(self, threads: usize) -> Self {
        self.policy(ExecutionPolicy::Parallel { threads })
    }

    /// Shorthand for `policy(ExecutionPolicy::Sequential)`.
    pub fn sequential(self) -> Self {
        self.policy(ExecutionPolicy::Sequential)
    }

    /// Pins the per-image scalar kernel path, ignoring SIMD detection —
    /// the programmatic form of the
    /// [`FLIGHT_FORCE_SCALAR`](crate::FORCE_SCALAR_ENV) escape hatch
    /// (which also works: the env var wins at detection time).
    pub fn force_scalar(mut self, force: bool) -> Self {
        self.force_scalar = force;
        self
    }

    /// Whether the scalar kernel path is pinned.
    pub fn forces_scalar(&self) -> bool {
        self.force_scalar
    }

    /// Whether batch-norm folding is enabled.
    pub fn folds_batch_norm(&self) -> bool {
        self.fold_batch_norm
    }

    /// The configured execution policy.
    pub fn execution_policy(&self) -> ExecutionPolicy {
        self.policy
    }
}

/// The immutable, shareable half of a compiled network: the lowered
/// stage list and nothing else.
///
/// A `CompiledNet` is `Send + Sync` — it holds no scratch buffers, no
/// telemetry handle, and no execution policy, so any number of threads
/// can run [`CompiledNet::forward`] on one instance concurrently, each
/// with its own [`ExecCtx`]. This is the type a long-running service
/// shares behind an `Arc`: the serve crate's hot-swap slot publishes an
/// `Arc<CompiledNet>` and every server worker clones the `Arc` on its
/// read path.
///
/// [`IntNetwork`] remains the convenient single-owner facade (policy +
/// telemetry bundled in); it is now a thin wrapper over
/// `Arc<CompiledNet>`.
#[derive(Debug, Clone)]
pub struct CompiledNet {
    layers: Vec<IntLayer>,
}

// The whole point of the split: compiled state must be shareable across
// server workers, per-call state must at least move into a worker.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    const fn assert_send<T: Send>() {}
    assert_send_sync::<CompiledNet>();
    assert_send::<ExecCtx>();
};

/// Per-call execution state: the reusable activation-quantization
/// scratch arenas plus the telemetry handle events of this call are
/// attributed to.
///
/// An `ExecCtx` is cheap to create but worth keeping: the scratch
/// buffers grow to the largest activation plane once and are reused by
/// every later forward, so a server worker holds one `ExecCtx` for its
/// lifetime while the `CompiledNet` underneath it may be hot-swapped
/// between calls.
#[derive(Debug, Default)]
pub struct ExecCtx {
    scratch: Scratch,
    telemetry: Telemetry,
}

impl ExecCtx {
    /// A fresh context with empty scratch and the null telemetry sink.
    pub fn new() -> Self {
        ExecCtx::default()
    }

    /// A fresh context whose forwards emit through `telemetry`.
    pub fn with_telemetry(telemetry: Telemetry) -> Self {
        ExecCtx {
            scratch: Scratch::default(),
            telemetry,
        }
    }

    /// Replaces the telemetry handle, keeping the warmed-up scratch.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The telemetry handle forwards through this context emit to.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The kernel dispatch path forwards through this context request
    /// (defaults to the process-wide detected path; individual conv
    /// calls may still fall back to scalar for small batches or
    /// overflow-risky programs).
    pub fn kernel_path(&self) -> KernelPath {
        self.scratch.lanes.path()
    }

    /// Re-pins the kernel dispatch path, keeping the warmed-up scratch
    /// (the engine sets this from [`CompileOptions::force_scalar`]).
    pub fn set_kernel_path(&mut self, path: KernelPath) {
        self.scratch.lanes.set_path(path);
    }
}

/// Emits the engaged kernel dispatch path as a
/// `kernel.dispatch.<path>` gauge, so traces record which interior
/// implementation produced them (skipped on the null sink).
fn emit_dispatch(telemetry: &Telemetry, path: KernelPath) {
    if telemetry.enabled() {
        telemetry.gauge(&format!("kernel.dispatch.{}", path.name()), 1.0, "path");
    }
}

impl CompiledNet {
    /// Lowers a trained network to the integer stage list; with
    /// `fold_batch_norm`, batch norms fold into the preceding conv's
    /// affine epilogue (bit-identical results, fewer stages).
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::UnsupportedLayer`] for plain layers the
    /// integer pipeline does not know (none are produced by
    /// [`NetworkConfig::build`](flightnn::configs::NetworkConfig::build)).
    pub fn compile(net: &mut QuantNet, fold_batch_norm: bool) -> Result<Self, CompileError> {
        let mut layers = compile_layers(net)?;
        if fold_batch_norm {
            fold_affines(&mut layers);
        }
        Ok(CompiledNet { layers })
    }

    /// Number of pipeline stages (after folding, if any).
    pub fn stages(&self) -> usize {
        self.layers.len()
    }

    /// Runs the pipeline sequentially on a float input batch `[n, …]`
    /// through `ctx`'s scratch arenas. With a live telemetry handle on
    /// the context every stage emits a `kernel.stage.<i>.<kind>` span
    /// plus per-stage op counters; with the null sink this is the
    /// uninstrumented hot loop.
    pub fn forward(&self, input: &Tensor, ctx: &mut ExecCtx) -> (Tensor, OpCounts) {
        if ctx.telemetry.enabled() {
            self.forward_traced(input, ctx)
        } else {
            let mut counts = OpCounts::default();
            let out = run_layers(
                &self.layers,
                &ctx.telemetry,
                input,
                &mut counts,
                &mut ctx.scratch,
            );
            (out, counts)
        }
    }

    /// Runs the pipeline under `policy`: batches that engage more than
    /// one worker split across crossbeam scoped threads (each worker
    /// with its own internal scratch); everything else runs through
    /// `ctx` on the calling thread. All paths are bit-identical because
    /// activations quantize with one scale per image.
    pub fn forward_with(
        &self,
        input: &Tensor,
        policy: ExecutionPolicy,
        ctx: &mut ExecCtx,
    ) -> (Tensor, OpCounts) {
        let batch = input.dims().first().copied().unwrap_or(0);
        let workers = policy.worker_count(batch);
        if workers > 1 {
            let span = ctx.telemetry.span("kernel.forward");
            ctx.telemetry
                .gauge("kernel.forward.workers", workers as f64, "worker");
            emit_dispatch(&ctx.telemetry, ctx.kernel_path());
            let result = forward_parallel(
                &self.layers,
                &ctx.telemetry,
                input,
                workers,
                ctx.kernel_path(),
            );
            drop(span);
            result
        } else {
            self.forward(input, ctx)
        }
    }

    /// Runs the pipeline sequentially while filling `sample` with
    /// per-stage wall nanoseconds and op totals — the
    /// [`StageProf`](flight_telemetry::StageProf) hook the serving
    /// profiler uses for 1-in-N sampled requests.
    ///
    /// Unlike [`forward_traced`](Self::forward), this path emits no
    /// spans, no counters, and allocates nothing: each stage costs one
    /// `Instant::now()` pair and three array stores into the
    /// caller-owned scratch. Profiled forwards always take the
    /// sequential stage walk (per-stage attribution requires it); the
    /// logits are bit-identical to every other path because activations
    /// quantize with one scale per image.
    pub fn forward_profiled(
        &self,
        input: &Tensor,
        ctx: &mut ExecCtx,
        sample: &mut StageSample,
    ) -> (Tensor, OpCounts) {
        sample.reset();
        sample.set_path(ctx.kernel_path().name());
        sample.set_images(input.dims().first().copied().unwrap_or(0) as u64);
        let mut counts = OpCounts::default();
        let mut owned: Option<Tensor> = None;
        for layer in &self.layers {
            let before = counts;
            let start = std::time::Instant::now();
            let x = owned.as_ref().unwrap_or(input);
            owned = Some(run_layer(
                layer,
                &ctx.telemetry,
                x,
                &mut counts,
                &mut ctx.scratch,
            ));
            sample.record_stage(
                stage_kind(layer),
                start.elapsed().as_nanos() as u64,
                counts.delta(before).total(),
            );
        }
        (owned.unwrap_or_else(|| input.clone()), counts)
    }

    /// Sequential execution with per-stage spans and counters.
    fn forward_traced(&self, input: &Tensor, ctx: &mut ExecCtx) -> (Tensor, OpCounts) {
        let forward_span = ctx.telemetry.span("kernel.forward");
        ctx.telemetry.gauge("kernel.forward.workers", 1.0, "worker");
        emit_dispatch(&ctx.telemetry, ctx.kernel_path());
        let mut counts = OpCounts::default();
        // Borrow the input for the first stage instead of cloning it;
        // every later stage consumes the previous stage's output.
        let mut owned: Option<Tensor> = None;
        for (i, layer) in self.layers.iter().enumerate() {
            let before = counts;
            let name = format!("kernel.stage.{i:02}.{}", stage_kind(layer));
            let stage_span = ctx.telemetry.span(&name);
            let x = owned.as_ref().unwrap_or(input);
            owned = Some(run_layer(
                layer,
                &ctx.telemetry,
                x,
                &mut counts,
                &mut ctx.scratch,
            ));
            drop(stage_span);
            for (field, n) in counts.delta(before).fields() {
                if n > 0 {
                    ctx.telemetry.counter(&format!("{name}.{field}"), n, "op");
                }
            }
        }
        drop(forward_span);
        (owned.unwrap_or_else(|| input.clone()), counts)
    }
}

/// A `QuantNet` lowered to integer execution: an `Arc<CompiledNet>`
/// bundled with a telemetry handle and an [`ExecutionPolicy`] — the
/// convenient single-owner facade over the [`CompiledNet`]/[`ExecCtx`]
/// split.
///
/// # Example
///
/// ```
/// use flight_kernels::{CompileOptions, IntNetwork};
/// use flight_tensor::{Tensor, TensorRng};
/// use flightnn::{configs::NetworkConfig, QuantScheme};
///
/// # fn main() -> Result<(), flight_kernels::engine::CompileError> {
/// let mut rng = TensorRng::seed(0);
/// let mut net = NetworkConfig::by_id(1)
///     .build(&QuantScheme::l1(), &mut rng, 10, [3, 16, 16], 0.25);
/// let engine = IntNetwork::compile_with(&mut net, CompileOptions::new())?;
/// let x = Tensor::zeros(&[1, 3, 16, 16]);
/// let (logits, counts) = engine.forward(&x);
/// assert_eq!(logits.dims(), &[1, 10]);
/// assert_eq!(counts.int_mults, 0); // multiplier-free
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct IntNetwork {
    net: std::sync::Arc<CompiledNet>,
    telemetry: Telemetry,
    policy: ExecutionPolicy,
    kernel_path: KernelPath,
}

impl IntNetwork {
    /// Compiles a trained network according to `options`.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::UnsupportedLayer`] for plain layers the
    /// integer pipeline does not know (none are produced by
    /// [`NetworkConfig::build`](flightnn::configs::NetworkConfig::build)).
    pub fn compile_with(net: &mut QuantNet, options: CompileOptions) -> Result<Self, CompileError> {
        let compiled = CompiledNet::compile(net, options.fold_batch_norm)?;
        Ok(IntNetwork {
            net: std::sync::Arc::new(compiled),
            telemetry: options.telemetry,
            policy: options.policy,
            kernel_path: if options.force_scalar {
                KernelPath::Scalar
            } else {
                active_path()
            },
        })
    }

    /// The kernel dispatch path this network's forwards request
    /// (resolved once at compile time from [`CompileOptions::force_scalar`],
    /// the `FLIGHT_FORCE_SCALAR` environment, and CPU detection).
    pub fn kernel_path(&self) -> KernelPath {
        self.kernel_path
    }

    /// The shared compiled half. Clone the `Arc` to hand the stage list
    /// to other threads (or a hot-swap slot) without duplicating it.
    pub fn compiled(&self) -> std::sync::Arc<CompiledNet> {
        self.net.clone()
    }

    /// Attaches a telemetry handle (default: the null sink). With a live
    /// sink, [`IntNetwork::forward`] emits a `kernel.forward` span plus
    /// per-stage spans (sequential) or per-worker spans (parallel).
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Replaces the telemetry handle in place.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Replaces the execution policy, keeping the compiled stages — the
    /// cheap way to compare sequential and parallel runs of one network.
    pub fn with_policy(mut self, policy: ExecutionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replaces the execution policy in place.
    pub fn set_policy(&mut self, policy: ExecutionPolicy) {
        self.policy = policy;
    }

    /// The active execution policy.
    pub fn policy(&self) -> ExecutionPolicy {
        self.policy
    }

    /// Number of pipeline stages (after folding, if any).
    pub fn stages(&self) -> usize {
        self.net.stages()
    }

    /// Runs the integer pipeline on a float input batch `[n, …]`,
    /// returning the logits and the aggregate integer-op counts of this
    /// pass.
    ///
    /// Dispatches internally:
    ///
    /// * **Parallel** (policy allows it and `n ≥ 2`): the batch is split
    ///   into contiguous image chunks on a crossbeam scoped-thread pool;
    ///   per-worker scratch buffers are reused across stages and
    ///   [`OpCounts`] are reduced associatively. With a live sink the
    ///   pass is bracketed by a `kernel.forward` span, reports a
    ///   `kernel.forward.workers` gauge, and each worker `w` emits
    ///   `kernel.worker.<w>.chunk` spans/counters.
    /// * **Sequential + traced**: every pipeline stage `i` emits a
    ///   `kernel.stage.<i>.<kind>` span plus one counter per nonzero
    ///   [`OpCounts`] field that stage spent. Every activation
    ///   quantization additionally reports
    ///   `kernel.qact.<conv|linear|requant>.saturated` / `.quantized`
    ///   counters (codes at the representable rail vs codes produced),
    ///   the clamp-rate signal `flightctl health` checks.
    /// * **Sequential + null sink**: the uninstrumented hot loop, no
    ///   telemetry branches inside.
    ///
    /// Activation scales are per image, so all three paths produce
    /// bit-identical logits and identical op counts.
    pub fn forward(&self, input: &Tensor) -> (Tensor, OpCounts) {
        let mut ctx = ExecCtx::with_telemetry(self.telemetry.clone());
        ctx.set_kernel_path(self.kernel_path);
        self.net.forward_with(input, self.policy, &mut ctx)
    }

    /// Like [`IntNetwork::forward`], but writes the logits into a
    /// caller-provided tensor — the serving path keeps one logits buffer
    /// alive instead of allocating per request. When `out` already has
    /// the right shape its allocation is reused; otherwise it is
    /// replaced.
    pub fn forward_into(&self, input: &Tensor, out: &mut Tensor) -> OpCounts {
        let (logits, counts) = self.forward(input);
        if out.dims() == logits.dims() {
            out.as_mut_slice().copy_from_slice(logits.as_slice());
        } else {
            *out = logits;
        }
        counts
    }
}

/// Short stage label used in telemetry event names.
fn stage_kind(layer: &IntLayer) -> &'static str {
    match layer {
        IntLayer::Conv { .. } => "conv",
        IntLayer::Affine { .. } => "affine",
        IntLayer::LeakyRelu { .. } => "leaky_relu",
        IntLayer::MaxPool { .. } => "maxpool",
        IntLayer::GlobalAvgPool => "global_avg_pool",
        IntLayer::Flatten => "flatten",
        IntLayer::Linear { .. } => "linear",
        IntLayer::Residual { .. } => "residual",
        IntLayer::Requant => "requant",
    }
}

fn compile_layers(net: &mut QuantNet) -> Result<Vec<IntLayer>, CompileError> {
    let mut out = Vec::new();
    for layer in net.layers_mut() {
        match layer {
            NetLayer::Conv(conv) => out.push(compile_conv(conv)),
            NetLayer::Linear(lin) => out.push(compile_linear(lin)),
            NetLayer::Residual(block) => {
                let slope = block.activation_slope();
                let main = compile_layers(block.main_mut())?;
                let shortcut = match block.shortcut_mut() {
                    Some(sc) => Some(compile_layers(sc)?),
                    None => None,
                };
                out.push(IntLayer::Residual {
                    main,
                    shortcut,
                    slope,
                });
            }
            NetLayer::Plain(boxed) => {
                let any: &mut dyn flight_nn::Layer = boxed.as_mut();
                let name = any.name();
                if name.starts_with("batchnorm2d") {
                    // Downcast-free extraction: rebuild the affine from a
                    // second forward pass is fragile; instead we re-read
                    // the known concrete types via trait-object name +
                    // unsafe-free re-dispatch below.
                    out.push(compile_batchnorm_by_probe(any, &name)?);
                } else if let Some(slope) = parse_leaky(&name) {
                    out.push(IntLayer::LeakyRelu { slope });
                } else if let Some(win) = parse_pool(&name) {
                    out.push(IntLayer::MaxPool { window: win });
                } else if name == "global_avg_pool" {
                    out.push(IntLayer::GlobalAvgPool);
                } else if name == "flatten" {
                    out.push(IntLayer::Flatten);
                } else if name.starts_with("act_quant") {
                    out.push(IntLayer::Requant);
                } else {
                    return Err(CompileError::UnsupportedLayer(name));
                }
            }
        }
    }
    Ok(out)
}

/// Extracts the inference-time affine of a batch norm by probing it with
/// basis inputs: for eval-mode BN, `y = a·x + b` per channel, so `b =
/// BN(0)` and `a = BN(1) − b`. This keeps the compiler decoupled from the
/// layer's private fields.
fn compile_batchnorm_by_probe(
    layer: &mut dyn flight_nn::Layer,
    name: &str,
) -> Result<IntLayer, CompileError> {
    let channels: usize = name
        .trim_start_matches("batchnorm2d(")
        .trim_end_matches(')')
        .parse()
        .map_err(|_| CompileError::UnsupportedLayer(name.to_string()))?;
    let zeros = Tensor::zeros(&[1, channels, 1, 1]);
    let ones = Tensor::ones(&[1, channels, 1, 1]);
    let b = layer.forward(&zeros, false);
    let a_plus_b = layer.forward(&ones, false);
    let scale = &a_plus_b - &b;
    Ok(IntLayer::Affine {
        scale: scale.reshape(&[channels]),
        bias: b.reshape(&[channels]),
    })
}

fn parse_leaky(name: &str) -> Option<f32> {
    name.strip_prefix("leaky_relu(")?
        .trim_end_matches(')')
        .parse()
        .ok()
}

fn parse_pool(name: &str) -> Option<usize> {
    let inner = name.strip_prefix("maxpool2d(")?.trim_end_matches(')');
    inner.split('x').next()?.parse().ok()
}

fn compile_conv(conv: &mut QuantConv2d) -> IntLayer {
    // Re-quantize: the layer's cache may be stale from the last training
    // step (the shadow weights moved after the last forward pass).
    let q = conv.quantize_weights();
    let counts = conv.filter_shift_counts();
    let weights = if counts.is_empty() {
        // Full or fixed-point scheme: distinguish by checking whether the
        // quantized weights differ from the shadow (fixed-point quantizes,
        // full passes through).
        if q == conv.shadow().value {
            IntWeights::Float(q)
        } else {
            IntWeights::Fixed(FixedWeights::quantize(&conv.shadow().value, 4))
        }
    } else {
        let plan = shift_plan(conv);
        IntWeights::Shift(ShiftKernel::compile(&plan, conv.shadow().value.dims()))
    };
    IntLayer::Conv {
        weights,
        bias: conv.bias().value.clone(),
        stride: conv.stride(),
        padding: conv.padding(),
        act_bits: 8,
    }
}

fn compile_linear(lin: &mut QuantLinear) -> IntLayer {
    let q = lin.quantize_weights();
    let counts = lin.row_shift_counts();
    let dims = q.dims().to_vec();
    let weights = if counts.is_empty() {
        if q == lin.shadow().value {
            // Full precision: lift [out, in] to a 1x1 conv weight.
            IntWeights::Float(q.reshape(&[dims[0], dims[1], 1, 1]))
        } else {
            // 4-bit fixed point, reshaped to a 1x1 conv weight.
            let w4 = lin.shadow().value.reshape(&[dims[0], dims[1], 1, 1]);
            IntWeights::Fixed(FixedWeights::quantize(&w4, 4))
        }
    } else {
        // A linear layer is a 1×1 conv on a 1×1 image.
        let plan = flightnn::convert::shift_plan_for(&q, &counts);
        IntWeights::Shift(ShiftKernel::compile(&plan, &[dims[0], dims[1], 1, 1]))
    };
    IntLayer::Linear {
        weights,
        bias: lin.bias().value.clone(),
        act_bits: 8,
    }
}

/// Folds the bias of every `Conv` directly followed by an `Affine` into
/// that affine: `a·(conv + bias) + b = a·conv + (a·bias + b)`. The conv
/// epilogue then adds nothing (its bias is zeroed), which is the standard
/// batch-norm-folding deployment transform; results are bit-identical.
fn fold_affines(layers: &mut [IntLayer]) {
    let mut i = 0;
    while i + 1 < layers.len() {
        let fold = matches!(
            (&layers[i], &layers[i + 1]),
            (IntLayer::Conv { .. }, IntLayer::Affine { .. })
        );
        if fold {
            // Take the conv bias out, rewrite the affine bias.
            let conv_bias = if let IntLayer::Conv { bias, .. } = &mut layers[i] {
                std::mem::replace(bias, Tensor::zeros(bias.dims()))
            } else {
                unreachable!("checked above")
            };
            if let IntLayer::Affine { scale, bias } = &mut layers[i + 1] {
                let new_bias: Vec<f32> = conv_bias
                    .as_slice()
                    .iter()
                    .zip(scale.as_slice())
                    .zip(bias.as_slice())
                    .map(|((&cb, &a), &b)| a * cb + b)
                    .collect();
                *bias = Tensor::from_slice(&new_bias);
            }
        }
        i += 1;
    }
    // Recurse into residual blocks.
    for layer in layers.iter_mut() {
        if let IntLayer::Residual { main, shortcut, .. } = layer {
            fold_affines(main);
            if let Some(sc) = shortcut {
                fold_affines(sc);
            }
        }
    }
}

/// Runs the full stage list sequentially. The input is borrowed for the
/// first stage (no upfront clone); `scratch` holds the reusable
/// activation-quantization buffers.
pub(crate) fn run_layers(
    layers: &[IntLayer],
    telemetry: &Telemetry,
    input: &Tensor,
    counts: &mut OpCounts,
    scratch: &mut Scratch,
) -> Tensor {
    let mut owned: Option<Tensor> = None;
    for layer in layers {
        let x = owned.as_ref().unwrap_or(input);
        owned = Some(run_layer(layer, telemetry, x, counts, scratch));
    }
    owned.unwrap_or_else(|| input.clone())
}

/// Emits the `kernel.lowering` span and gauges describing how an integer
/// conv stage decomposes `geom` — interior/border position split and
/// taps per filter — attributed per worker through the caller's
/// [`PrefixSink`](flight_telemetry::Telemetry::with_prefix)ed handle.
/// Returns the span guard bracketing the kernel run (`None` on the null
/// sink, which keeps the hot path free of telemetry work).
fn lowering_span(
    telemetry: &Telemetry,
    stats: crate::shift::LoweringStats,
) -> Option<flight_telemetry::Span> {
    if !telemetry.enabled() {
        return None;
    }
    telemetry.gauge(
        "kernel.lowering.interior_positions",
        stats.interior_positions as f64,
        "pos",
    );
    telemetry.gauge(
        "kernel.lowering.border_positions",
        stats.border_positions as f64,
        "pos",
    );
    telemetry.gauge(
        "kernel.lowering.taps_per_filter",
        stats.mean_taps_per_filter(),
        "tap",
    );
    Some(telemetry.span("kernel.lowering"))
}

/// Reports how many just-quantized activation codes sit at the
/// representable rail, as `kernel.qact.<stage>.saturated` /
/// `.quantized` counters. The post-pass over the codes only runs with a
/// live sink, so the null-sink hot path never pays for it.
fn emit_saturation(telemetry: &Telemetry, stage: &'static str, codes: &[i32], bits: u32) {
    if !telemetry.enabled() || codes.is_empty() {
        return;
    }
    telemetry.counter(
        &format!("kernel.qact.{stage}.saturated"),
        QuantActivations::saturation_count(codes, bits),
        "op",
    );
    telemetry.counter(
        &format!("kernel.qact.{stage}.quantized"),
        codes.len() as u64,
        "op",
    );
}

/// One integer conv over `x` with whichever datapath the layer compiled
/// to, quantizing activations per image through the scratch buffers.
/// `stage` labels the quantization site (`"conv"` / `"linear"`) in the
/// saturation counters.
#[allow(clippy::too_many_arguments)]
fn conv_stage(
    weights: &IntWeights,
    telemetry: &Telemetry,
    stage: &'static str,
    act_bits: u32,
    x: &Tensor,
    stride: usize,
    padding: usize,
    counts: &mut OpCounts,
    scratch: &mut Scratch,
) -> Tensor {
    let d = x.dims();
    assert_eq!(d.len(), 4, "conv input must be [n, c, h, w]");
    match weights {
        IntWeights::Shift(kernel) => {
            QuantActivations::quantize_per_image_into(
                x,
                act_bits,
                &mut scratch.codes,
                &mut scratch.scales,
            );
            emit_saturation(telemetry, stage, &scratch.codes, act_bits);
            let geom = Conv2dGeometry::new(d[1], d[2], d[3], kernel.kernel_size(), stride, padding);
            let mut out = Tensor::zeros(&[d[0], kernel.filters(), geom.out_h, geom.out_w]);
            let span = lowering_span(telemetry, kernel.lowering_stats(&geom));
            shift_add_conv_core(
                &scratch.codes,
                &scratch.scales,
                &geom,
                kernel,
                out.as_mut_slice(),
                counts,
                &mut scratch.lanes,
            );
            drop(span);
            out
        }
        IntWeights::Fixed(fw) => {
            QuantActivations::quantize_per_image_into(
                x,
                act_bits,
                &mut scratch.codes,
                &mut scratch.scales,
            );
            emit_saturation(telemetry, stage, &scratch.codes, act_bits);
            let geom = Conv2dGeometry::new(d[1], d[2], d[3], fw.dims()[2], stride, padding);
            let mut out = Tensor::zeros(&[d[0], fw.dims()[0], geom.out_h, geom.out_w]);
            let span = lowering_span(telemetry, fw.lowering_stats(&geom));
            fixed_point_conv_core(
                &scratch.codes,
                &scratch.scales,
                &geom,
                fw,
                out.as_mut_slice(),
                counts,
                &mut scratch.lanes,
            );
            drop(span);
            out
        }
        IntWeights::Float(w) => {
            let (o, _) = flight_nn::layers::functional::conv2d_forward(
                x,
                w,
                &Tensor::zeros(&[w.dims()[0]]),
                stride,
                padding,
                false,
            );
            // macs = weights × output positions × batch.
            let filters = w.dims()[0];
            let macs = (w.len() * o.len() / filters.max(1)) as u64;
            counts.float_mults += macs;
            counts.float_adds += macs;
            o
        }
    }
}

pub(crate) fn run_layer(
    layer: &IntLayer,
    telemetry: &Telemetry,
    x: &Tensor,
    counts: &mut OpCounts,
    scratch: &mut Scratch,
) -> Tensor {
    match layer {
        IntLayer::Conv {
            weights,
            bias,
            stride,
            padding,
            act_bits,
        } => {
            let mut out = conv_stage(
                weights, telemetry, "conv", *act_bits, x, *stride, *padding, counts, scratch,
            );
            add_channel_bias(&mut out, bias);
            out
        }
        IntLayer::Linear {
            weights,
            bias,
            act_bits,
        } => {
            // Lift [n, f] to [n, f, 1, 1] and reuse the conv kernels.
            let n = x.dims()[0];
            let f = x.len() / n.max(1);
            let as_img = x.reshape(&[n, f, 1, 1]);
            let mut out = conv_stage(
                weights, telemetry, "linear", *act_bits, &as_img, 1, 0, counts, scratch,
            );
            add_channel_bias(&mut out, bias);
            let classes = out.len() / n.max(1);
            out.reshape_in_place(&[n, classes]);
            out
        }
        IntLayer::Affine { scale, bias } => {
            let mut out = x.clone();
            scale_channels(&mut out, scale, bias);
            out
        }
        IntLayer::LeakyRelu { slope } => {
            let s = *slope;
            x.map(|v| if v > 0.0 { v } else { s * v })
        }
        IntLayer::MaxPool { window } => {
            let mut pool = MaxPool2d::new(*window);
            flight_nn::Layer::forward(&mut pool, x, false)
        }
        IntLayer::GlobalAvgPool => {
            let mut gap = flight_nn::layers::GlobalAvgPool::new();
            flight_nn::Layer::forward(&mut gap, x, false)
        }
        IntLayer::Flatten => {
            let n = x.dims()[0];
            x.reshape(&[n, x.len() / n.max(1)])
        }
        IntLayer::Requant => {
            QuantActivations::quantize_per_image_into(
                x,
                8,
                &mut scratch.codes,
                &mut scratch.scales,
            );
            emit_saturation(telemetry, "requant", &scratch.codes, 8);
            let n = x.dims()[0];
            let stride = x.len().checked_div(n).unwrap_or(0);
            let mut data = Vec::with_capacity(x.len());
            for (b, &s) in scratch.scales.iter().enumerate() {
                data.extend(
                    scratch.codes[b * stride..(b + 1) * stride]
                        .iter()
                        .map(|&c| c as f32 * s),
                );
            }
            Tensor::from_vec(data, x.dims())
        }
        IntLayer::Residual {
            main,
            shortcut,
            slope,
        } => {
            let main_out = run_layers(main, telemetry, x, counts, scratch);
            let short_out = match shortcut {
                Some(sc) => run_layers(sc, telemetry, x, counts, scratch),
                None => x.clone(),
            };
            let sum = &main_out + &short_out;
            let s = *slope;
            sum.map(|v| if v > 0.0 { v } else { s * v })
        }
    }
}

fn add_channel_bias(out: &mut Tensor, bias: &Tensor) {
    let (n, c) = (out.dims()[0], out.dims()[1]);
    let plane = out.len() / (n * c).max(1);
    for b in 0..n {
        for ch in 0..c {
            let add = bias.as_slice()[ch];
            let base = (b * c + ch) * plane;
            for v in &mut out.as_mut_slice()[base..base + plane] {
                *v += add;
            }
        }
    }
}

fn scale_channels(out: &mut Tensor, scale: &Tensor, bias: &Tensor) {
    let (n, c) = (out.dims()[0], out.dims()[1]);
    let plane = out.len() / (n * c).max(1);
    for b in 0..n {
        for ch in 0..c {
            let (a, bb) = (scale.as_slice()[ch], bias.as_slice()[ch]);
            let base = (b * c + ch) * plane;
            for v in &mut out.as_mut_slice()[base..base + plane] {
                *v = a * *v + bb;
            }
        }
    }
}

// Tests live in tests/engine.rs and tests/parity.rs (they need trained
// or hand-built networks and are slower than unit scale).
