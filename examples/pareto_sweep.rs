//! The paper's core story (Fig. 1): FLightNN's λ knob produces a
//! *continuous* accuracy–storage–energy Pareto front between LightNN-1
//! and LightNN-2. This example sweeps λ and prints the front next to the
//! two LightNN endpoints.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example pareto_sweep
//! ```

use flight_asic::{ComputeStyle, OpEnergy};
use flight_data::{DatasetKind, Fidelity, SyntheticDataset};
use flight_nn::evaluate;
use flight_tensor::TensorRng;
use flightnn::configs::NetworkConfig;
use flightnn::reg::RegStrength;
use flightnn::storage::storage_report;
use flightnn::{FlightTrainer, QuantNet, QuantScheme};

fn train(scheme: &QuantScheme, data: &SyntheticDataset, epochs: usize) -> (QuantNet, f32) {
    let cfg = NetworkConfig::by_id(1);
    let mut rng = TensorRng::seed(11);
    let mut net = cfg.build(scheme, &mut rng, data.classes(), data.image_dims(), 0.25);
    let mut trainer = FlightTrainer::new(scheme, 3e-3);
    let batches = data.train_batches(16);
    if matches!(scheme, QuantScheme::FLight { .. }) {
        trainer.fit_two_phase(&mut net, &batches, epochs);
    } else {
        trainer.fit(&mut net, &batches, epochs);
    }
    let acc = evaluate(&mut net, &data.test_batches(32), 1).accuracy;
    (net, acc)
}

fn main() {
    let data = SyntheticDataset::preset(DatasetKind::Cifar10Like, Fidelity::Smoke, 21);
    let epochs = 30;
    let energy_table = OpEnergy::nm65();
    let spec = NetworkConfig::by_id(1).largest_conv([3, 32, 32], 1.0);

    println!("model,lambda,mean_k,storage_mb,energy_uj,accuracy_pct");

    // Endpoints.
    for (label, scheme, k) in [
        ("L-1", QuantScheme::l1(), 1.0f32),
        ("L-2", QuantScheme::l2(), 2.0),
    ] {
        let (mut net, acc) = train(&scheme, &data, epochs);
        let storage = storage_report(&mut net).megabytes();
        let energy = flight_asic::layer_energy_uj(
            &spec,
            &ComputeStyle::ShiftAdd { mean_k: k },
            &energy_table,
        );
        println!(
            "{label},-,{k:.2},{storage:.5},{energy:.4},{:.2}",
            acc * 100.0
        );
    }

    // The FLightNN front: λ sweeps the continuum.
    for lambda in [0.5f32, 1.5, 3.0, 6.0, 12.0] {
        let scheme = QuantScheme::flight_with(RegStrength::new(vec![0.0, lambda]), 2);
        let (mut net, acc) = train(&scheme, &data, epochs);
        let counts = net.all_shift_counts();
        let mean_k = counts.iter().sum::<usize>() as f32 / counts.len().max(1) as f32;
        let storage = storage_report(&mut net).megabytes();
        let energy =
            flight_asic::layer_energy_uj(&spec, &ComputeStyle::ShiftAdd { mean_k }, &energy_table);
        println!(
            "FL,{lambda},{mean_k:.2},{storage:.5},{energy:.4},{:.2}",
            acc * 100.0
        );
    }
    eprintln!("(Each FL row is one point on the Fig. 1 trade-off curve; mean_k");
    eprintln!(" moves continuously from 2 toward 1 as lambda grows.)");
}
