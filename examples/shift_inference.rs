//! Multiplier-free inference end to end: train a LightNN-style model,
//! compile its first convolution to the shift-add integer kernel, and
//! compare outputs and operation counts against the fixed-point multiply
//! kernel — the software mirror of the paper's hardware argument.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example shift_inference
//! ```

use flight_kernels::fixed::FixedWeights;
use flight_kernels::{fixed_point_conv, shift_add_conv, QuantActivations, ShiftKernel};
use flight_tensor::{uniform, TensorRng};
use flightnn::convert::shift_plan;
use flightnn::layers::QuantConv2d;
use flightnn::QuantScheme;

fn main() {
    let mut rng = TensorRng::seed(3);

    // A quantized conv layer per scheme, same shadow weights for all.
    let shadow = uniform(&mut rng, &[16, 8, 3, 3], -0.6, 0.6);
    let x = uniform(&mut rng, &[4, 8, 12, 12], -1.0, 1.0);
    let qa = QuantActivations::quantize(&x, 8);

    println!("input: {:?}, weights: {:?}\n", x.dims(), shadow.dims());

    // Fixed-point multiply path (the FP 4W8A baseline datapath).
    let fixed = FixedWeights::quantize(&shadow, 4);
    let (out_fixed, counts_fixed) = fixed_point_conv(&qa, &fixed, 1, 1);
    println!("fixed-point 4W8A : {counts_fixed}");

    // Shift-add paths for L-1, L-2 and a FLightNN.
    for scheme in [
        QuantScheme::l1(),
        QuantScheme::l2(),
        QuantScheme::flight(1e-5),
    ] {
        let mut conv = QuantConv2d::new(&mut rng, &scheme, 8, 16, 3, 1, 1);
        conv.shadow_mut().value = shadow.clone();
        if let Some(t) = conv.thresholds_mut() {
            // Give the FLightNN layer a mixed k profile for the demo.
            t.value = flight_tensor::Tensor::from_slice(&[0.0, 0.45]);
        }
        let plan = shift_plan(&mut conv);
        let kernel = ShiftKernel::compile(&plan, &[16, 8, 3, 3]);
        let (out_shift, counts) = shift_add_conv(&qa, &kernel, 1, 1);

        // The shift path must agree with a float reference of the same
        // quantized weights; compare to the fixed path only loosely (they
        // quantize weights differently).
        let drift = out_shift.sq_distance(&out_fixed).sqrt() / out_fixed.norm_l2().max(1e-6);
        println!(
            "{:<18}: {counts}  (total subfilters {}, vs fixed-point drift {:.3})",
            scheme.label(),
            plan.total_subfilters(),
            drift
        );
        assert_eq!(counts.int_mults, 0, "shift path must not multiply");
    }

    println!("\nEvery shift-add row executes zero integer multiplies — the");
    println!("multiplier is gone, exactly as the paper's hardware replaces");
    println!("DSP multipliers with LUT shifts. L-1 halves the shift count of");
    println!("L-2; the FLightNN sits in between according to its mixed k_i.");
}
