//! Quickstart: train a FLightNN on a synthetic CIFAR-10 stand-in, watch
//! the per-filter shift counts settle, and verify the Fig. 3 hardware
//! equivalence of the result.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use flight_data::{DatasetKind, Fidelity, SyntheticDataset};
use flight_nn::evaluate;
use flight_tensor::TensorRng;
use flightnn::configs::NetworkConfig;
use flightnn::convert::verify_equivalence;
use flightnn::reg::RegStrength;
use flightnn::storage::storage_report;
use flightnn::{FlightTrainer, QuantScheme};

fn main() {
    // 1. A synthetic 10-class image dataset (CIFAR-10 stand-in).
    let data = SyntheticDataset::preset(DatasetKind::Cifar10Like, Fidelity::Smoke, 7);
    println!(
        "dataset: {} train / {} test images, {} classes",
        data.train_len(),
        data.test_len(),
        data.classes()
    );

    // 2. Network 1 of the paper (VGG-7), width-reduced for a quick demo,
    //    quantized as a FLightNN with k_max = 2 and a moderate residual
    //    penalty.
    let scheme = QuantScheme::flight_with(RegStrength::new(vec![0.0, 3.0]), 2);
    let cfg = NetworkConfig::by_id(1);
    let mut rng = TensorRng::seed(42);
    let mut net = cfg.build(&scheme, &mut rng, data.classes(), data.image_dims(), 0.25);
    println!("network: {cfg}");

    // 3. Algorithm 1 with the gradual-quantization schedule (the first
    //    few epochs shown individually; regularization stays off during
    //    this preview, as in the schedule's learn phase).
    let mut trainer = FlightTrainer::new(&scheme, 3e-3);
    let train = data.train_batches(16);
    trainer.set_reg_scale(0.0);
    for epoch in 0..3 {
        let stats = trainer.train_epoch(&mut net, &train);
        println!("preview epoch {epoch}: {stats}");
    }
    trainer.set_reg_scale(1.0);
    trainer.fit_two_phase(&mut net, &train, 27);

    // 4. Results: accuracy, per-filter shift counts, storage.
    let test = data.test_batches(32);
    let stats = evaluate(&mut net, &test, 1);
    println!("test: {stats}");

    let counts = net.all_shift_counts();
    let k1 = counts.iter().filter(|&&k| k == 1).count();
    let k2 = counts.iter().filter(|&&k| k == 2).count();
    println!(
        "shift counts: {k1} filters use one shift, {k2} use two (of {})",
        counts.len()
    );
    println!("storage: {}", storage_report(&mut net));

    // 5. Fig. 3: every k_i-shift filter is exactly k_i one-shift filters.
    let mut max_err = 0.0f32;
    let probe = &test[0].input;
    net.visit_quant_convs(&mut |conv| {
        // Only the first conv sees the raw input; deeper layers would need
        // their own activations, so probe just this one.
        if max_err == 0.0 {
            max_err = verify_equivalence(conv, probe);
        }
    });
    println!("Fig. 3 equivalence max error on first conv: {max_err:.2e}");
}
