//! Hardware-designer workflow from the paper's introduction: given a
//! network and a latency/throughput target, explore which quantization
//! scheme fits the FPGA. Reports, for every conv layer of the chosen
//! network, the ZC706 implementation the model picks (batch size, binding
//! resource, throughput) under each arithmetic style.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example fpga_planner [network-id]
//! ```

use flight_fpga::{implement_layer, Datapath, LayerDesign, ZC706};
use flightnn::configs::NetworkConfig;
use flightnn::QuantScheme;

fn main() {
    let id: u8 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    let cfg = NetworkConfig::by_id(id);
    let image = [3, 32, 32];
    let plan = cfg.conv_plan(image, 1.0);

    println!("FPGA plan for {cfg} on the ZC706 model (paper-native width)\n");

    let styles: Vec<(&str, Datapath, u32)> = vec![
        ("Full", Datapath::Float32, 32),
        (
            "FP 4W8A",
            Datapath::from_scheme(&QuantScheme::fp4w8a(), None),
            4,
        ),
        ("L-2", Datapath::from_scheme(&QuantScheme::l2(), None), 8),
        ("L-1", Datapath::from_scheme(&QuantScheme::l1(), None), 4),
        (
            "FL (k̄=1.5)",
            Datapath::from_scheme(&QuantScheme::flight(1e-5), Some(1.5)),
            6,
        ),
    ];

    for (style_label, datapath, bits) in &styles {
        println!("--- {style_label} ---");
        let mut worst: f64 = f64::INFINITY;
        for (i, spec) in plan.iter().enumerate() {
            let design = LayerDesign {
                spec: *spec,
                datapath: *datapath,
                weight_bits: spec.weights() * *bits as usize,
            };
            match implement_layer(&design, &ZC706) {
                Ok(imp) => {
                    worst = worst.min(imp.throughput);
                    println!(
                        "  conv{:<2} {:>4}→{:<4} {}x{}  batch {:>4} ({}-bound)  {:>12.0} img/s",
                        i,
                        spec.in_channels,
                        spec.out_channels,
                        spec.kernel,
                        spec.kernel,
                        imp.batch,
                        imp.binding,
                        imp.throughput
                    );
                }
                Err(e) => println!("  conv{i:<2} does not fit: {e}"),
            }
        }
        if worst.is_finite() {
            println!("  => pipeline bottleneck: {worst:.0} img/s\n");
        }
    }
    println!("(The bottleneck layer is what Tables 2-5 implement; compare the");
    println!(" per-style bottlenecks to the tables' speedup columns.)");
}
