//! The deployment path end to end: train a FLightNN, save its
//! parameters, reload them into a fresh network, compile the network to
//! the multiplier-free integer pipeline (with batch norms folded), and
//! verify that integer accuracy matches the float path while executing
//! zero multiplies.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example deploy_int8
//! ```

use flight_data::{DatasetKind, Fidelity, SyntheticDataset};
use flight_kernels::{CompileOptions, IntNetwork};
use flight_nn::loss::top_k_accuracy;
use flight_nn::Layer;
use flight_tensor::TensorRng;
use flightnn::configs::NetworkConfig;
use flightnn::io::{load_params, save_params};
use flightnn::reg::RegStrength;
use flightnn::{FlightTrainer, QuantScheme};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Train.
    let data = SyntheticDataset::preset(DatasetKind::Cifar10Like, Fidelity::Smoke, 7);
    let scheme = QuantScheme::flight_with(RegStrength::new(vec![0.0, 3.0]), 2);
    let cfg = NetworkConfig::by_id(1);
    let mut rng = TensorRng::seed(3);
    let mut net = cfg.build(&scheme, &mut rng, data.classes(), data.image_dims(), 0.25);
    let mut trainer = FlightTrainer::new(&scheme, 3e-3);
    trainer.fit_two_phase(&mut net, &data.train_batches(16), 30);

    // 2. Save → reload into a fresh network (as a deployment step would).
    let mut checkpoint = Vec::new();
    save_params(&mut net, &mut checkpoint)?;
    println!("checkpoint: {} bytes", checkpoint.len());

    let mut rng2 = TensorRng::seed(99);
    let mut deployed = cfg.build(&scheme, &mut rng2, data.classes(), data.image_dims(), 0.25);
    load_params(&mut deployed, &mut checkpoint.as_slice())?;

    // 3. Compile to the integer pipeline with folded batch norms. The
    //    default execution policy splits each batch across all cores.
    let engine =
        IntNetwork::compile_with(&mut deployed, CompileOptions::new().fold_batch_norm(true))?;
    println!("compiled integer pipeline: {} stages", engine.stages());

    // 4. Compare float vs integer accuracy, and count operations.
    let mut float_correct = 0.0;
    let mut int_correct = 0.0;
    let mut samples = 0usize;
    let mut total_counts = flight_kernels::OpCounts::default();
    for batch in data.test_batches(16) {
        let fl = deployed.forward(&batch.input, false);
        let (il, counts) = engine.forward(&batch.input);
        float_correct += top_k_accuracy(&fl, &batch.labels, 1) * batch.len() as f32;
        int_correct += top_k_accuracy(&il, &batch.labels, 1) * batch.len() as f32;
        total_counts += counts;
        samples += batch.len();
    }
    println!(
        "float path:   {:.2}% top-1",
        100.0 * float_correct / samples as f32
    );
    println!(
        "integer path: {:.2}% top-1",
        100.0 * int_correct / samples as f32
    );
    println!("integer ops over the test set: {total_counts}");
    assert_eq!(
        total_counts.int_mults, 0,
        "the deployed FLightNN must not multiply"
    );
    println!("zero integer multiplies — the multiplier is gone.");
    Ok(())
}
