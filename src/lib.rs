//! Umbrella crate for the FLightNN reproduction workspace.
//!
//! Re-exports every member crate so the workspace-root examples and
//! integration tests can exercise the whole public API through one
//! dependency. Library users should depend on the individual crates
//! (`flightnn`, `flight-fpga`, …) directly.

pub use flight_asic as asic;
pub use flight_data as data;
pub use flight_fpga as fpga;
pub use flight_kernels as kernels;
pub use flight_nn as nn;
pub use flight_tensor as tensor;
pub use flightnn as core;
